use crate::{Shape, TensorError};
use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` tensor.
///
/// `Tensor` owns its storage as a contiguous `Vec<f32>`. All arithmetic is
/// eager and allocates the output unless an `_inplace`/`_into` variant is
/// used. Shapes must match exactly for binary elementwise operations — there
/// is no general broadcasting; the few broadcast patterns CNN training needs
/// (per-row bias, per-channel scale) have dedicated methods.
///
/// ```
/// use socflow_tensor::{Tensor, Shape};
/// let t = Tensor::zeros(Shape::from([2, 2]));
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.sum(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { data, shape }
    }

    /// Fallible version of [`Tensor::from_vec`].
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if the data length does not
    /// equal the number of elements implied by the shape.
    pub fn try_from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// A rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::scalar(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying storage (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data but a new shape.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            self.data.len(),
            shape.len(),
            "cannot reshape {} elements into {shape}",
            self.data.len()
        );
        self.shape = shape;
        self
    }

    /// Reshapes `self` to `shape`, growing or shrinking the storage in place.
    ///
    /// Unlike [`Tensor::reshape`], the element counts need not match: this is
    /// the primitive behind every `_into` kernel variant and [`crate::pool`],
    /// letting a scratch tensor be retargeted without reallocating (beyond
    /// what `Vec` growth requires). Element values after a resize are
    /// unspecified — callers are expected to overwrite the tensor.
    pub fn resize(&mut self, shape: impl Into<Shape>) {
        let shape = shape.into();
        self.data.resize(shape.len(), 0.0);
        self.shape = shape;
    }

    /// Overwrites `self` with a copy of `other`, reusing `self`'s storage.
    ///
    /// Equivalent to `*self = other.clone()` without the fresh allocation.
    pub fn copy_from(&mut self, other: &Tensor) {
        self.data.clear();
        self.data.extend_from_slice(&other.data);
        self.shape = other.shape.clone();
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.flat_index(index);
        self.data[i] = value;
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.rank(), "index rank mismatch");
        let strides = self.shape.strides();
        let mut flat = 0;
        for (i, (&ix, &stride)) in index.iter().zip(strides.iter()).enumerate() {
            assert!(
                ix < self.shape.dim(i),
                "index {ix} out of bounds in dim {i}"
            );
            flat += ix * stride;
        }
        flat
    }

    // ----- elementwise -----

    fn zip_check(&self, other: &Tensor, op: &'static str) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch in `{op}`: {} vs {}",
            self.shape, other.shape
        );
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_check(other, "add");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor::from_vec(data, self.shape.clone())
    }

    /// In-place elementwise sum. Panics on shape mismatch.
    pub fn add_inplace(&mut self, other: &Tensor) {
        self.zip_check(other, "add_inplace");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += scale * other` (axpy). Panics on shape mismatch.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, scale: f32) {
        self.zip_check(other, "add_scaled_inplace");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Elementwise difference. Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_check(other, "sub");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor::from_vec(data, self.shape.clone())
    }

    /// In-place elementwise difference. Panics on shape mismatch.
    pub fn sub_inplace(&mut self, other: &Tensor) {
        self.zip_check(other, "sub_inplace");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// Elementwise (Hadamard) product. Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_check(other, "mul");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor::from_vec(data, self.shape.clone())
    }

    /// In-place elementwise (Hadamard) product. Panics on shape mismatch.
    pub fn mul_inplace(&mut self, other: &Tensor) {
        self.zip_check(other, "mul_inplace");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * s).collect();
        Tensor::from_vec(data, self.shape.clone())
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Tensor::from_vec(data, self.shape.clone())
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Overwrites every element with zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    // ----- reductions -----

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; 0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute value; 0 for an empty tensor.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &a| m.max(a.abs()))
    }

    /// Euclidean (L2) norm.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Dot product of the flattened tensors. Panics on shape mismatch.
    pub fn dot(&self, other: &Tensor) -> f32 {
        self.zip_check(other, "dot");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Cosine similarity of the flattened tensors; 0 if either is all-zero.
    ///
    /// This is the α-metric primitive of SoCFlow's mixed-precision
    /// controller (paper Eq. 4).
    pub fn cosine_similarity(&self, other: &Tensor) -> f32 {
        let denom = self.l2_norm() * other.l2_norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    // ----- matrix/row helpers (used by NN layers) -----

    /// Adds a bias vector to every row of a `(rows, cols)` matrix.
    ///
    /// # Panics
    /// Panics if `self` is not rank-2 or `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        let (rows, cols) = self.shape.as_matrix();
        assert_eq!(bias.len(), cols, "bias length must equal column count");
        let mut out = self.clone();
        for r in 0..rows {
            for c in 0..cols {
                out.data[r * cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Adds a bias vector to every row of a `(rows, cols)` matrix in place.
    ///
    /// # Panics
    /// Panics if `self` is not rank-2 or `bias.len() != cols`.
    pub fn add_row_broadcast_inplace(&mut self, bias: &Tensor) {
        let (rows, cols) = self.shape.as_matrix();
        assert_eq!(bias.len(), cols, "bias length must equal column count");
        for r in 0..rows {
            let row = &mut self.data[r * cols..(r + 1) * cols];
            for (o, b) in row.iter_mut().zip(&bias.data) {
                *o += b;
            }
        }
    }

    /// Sums a `(rows, cols)` matrix down to a length-`cols` vector.
    ///
    /// # Panics
    /// Panics if `self` is not rank-2.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::default();
        self.sum_rows_into(&mut out);
        out
    }

    /// [`Tensor::sum_rows`] writing into `out`, reusing its storage.
    ///
    /// # Panics
    /// Panics if `self` is not rank-2.
    pub fn sum_rows_into(&self, out: &mut Tensor) {
        let (rows, cols) = self.shape.as_matrix();
        out.resize([cols]);
        let od = out.data_mut();
        od.fill(0.0);
        for r in 0..rows {
            for (c, o) in od.iter_mut().enumerate() {
                *o += self.data[r * cols + c];
            }
        }
    }

    /// Concatenates tensors along axis 0 (all other dimensions must match).
    ///
    /// # Panics
    /// Panics if `parts` is empty or trailing dimensions disagree.
    pub fn concat0(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat of nothing");
        let first = parts[0].shape().dims();
        assert!(!first.is_empty(), "concat needs rank >= 1");
        let tail = &first[1..];
        let mut dim0 = 0;
        for p in parts {
            let d = p.shape().dims();
            assert_eq!(&d[1..], tail, "trailing dims must match");
            dim0 += d[0];
        }
        let mut data = Vec::with_capacity(dim0 * tail.iter().product::<usize>());
        for p in parts {
            data.extend_from_slice(p.data());
        }
        let mut dims = vec![dim0];
        dims.extend_from_slice(tail);
        Tensor::from_vec(data, Shape::new(dims))
    }

    /// A copy of rows `[from, to)` along axis 0.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or reversed.
    pub fn slice0(&self, from: usize, to: usize) -> Tensor {
        let dims = self.shape.dims();
        assert!(!dims.is_empty(), "slice needs rank >= 1");
        assert!(from <= to && to <= dims[0], "invalid slice {from}..{to}");
        let per: usize = dims[1..].iter().product();
        let mut out_dims = dims.to_vec();
        out_dims[0] = to - from;
        Tensor::from_vec(
            self.data[from * per..to * per].to_vec(),
            Shape::new(out_dims),
        )
    }

    /// Index of the maximum element in each row of a `(rows, cols)` matrix.
    ///
    /// # Panics
    /// Panics if `self` is not rank-2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (rows, cols) = self.shape.as_matrix();
        assert!(cols > 0, "argmax over zero columns");
        (0..rows)
            .map(|r| {
                let row = &self.data[r * cols..(r + 1) * cols];
                let mut best = 0;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tensor{} {:?}",
            self.shape,
            &self.data[..self.data.len().min(8)]
        )?;
        if self.data.len() > 8 {
            write!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.at(&[0, 2]), 3.0);
        assert_eq!(t.at(&[1, 0]), 4.0);
        let mut t = t;
        t.set(&[1, 2], 9.0);
        assert_eq!(t.at(&[1, 2]), 9.0);
    }

    #[test]
    fn try_from_vec_rejects_bad_length() {
        let err = Tensor::try_from_vec(vec![1.0; 5], [2, 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_panics_on_bad_length() {
        Tensor::from_vec(vec![1.0; 5], [2, 3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], [2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        let mut c = a.clone();
        c.add_scaled_inplace(&b, 0.5);
        assert_eq!(c.data(), &[2.5, 4.5]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        let _ = a.add(&b);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![3.0, -4.0], [2]);
        assert_eq!(t.sum(), -1.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.abs_max(), 4.0);
        assert!((t.l2_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_similarity_basic() {
        let a = Tensor::from_vec(vec![1.0, 0.0], [2]);
        let b = Tensor::from_vec(vec![0.0, 1.0], [2]);
        assert_eq!(a.cosine_similarity(&b), 0.0);
        assert!((a.cosine_similarity(&a) - 1.0).abs() < 1e-6);
        let neg = a.scale(-3.0);
        assert!((a.cosine_similarity(&neg) + 1.0).abs() < 1e-6);
        // zero vector -> defined as 0
        assert_eq!(a.cosine_similarity(&Tensor::zeros([2])), 0.0);
    }

    #[test]
    fn row_broadcast_and_sum_rows() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let bias = Tensor::from_vec(vec![10.0, 20.0], [2]);
        assert_eq!(m.add_row_broadcast(&bias).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(m.sum_rows().data(), &[4.0, 6.0]);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let m = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.5], [2, 2]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn concat0_and_slice0_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0], [1, 2]);
        let c = Tensor::concat0(&[&a, &b]);
        assert_eq!(c.shape().dims(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(c.slice0(0, 2), a);
        assert_eq!(c.slice0(2, 3), b);
        // empty slice is legal
        assert_eq!(c.slice0(1, 1).shape().dims(), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "trailing dims")]
    fn concat0_checks_trailing_dims() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([2, 3]);
        let _ = Tensor::concat0(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "invalid slice")]
    fn slice0_checks_bounds() {
        Tensor::zeros([2, 2]).slice0(1, 3);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]).reshape([2, 2]);
        assert_eq!(t.shape().dims(), &[2, 2]);
        assert_eq!(t.at(&[1, 1]), 4.0);
    }
}
