//! Dense linear algebra: blocked matrix multiply and transposes.
//!
//! These routines are the compute kernels behind [`socflow_nn`]'s linear and
//! (via im2col) convolution layers. They are written for cache-friendly
//! access patterns rather than raw SIMD throughput: all experiment harnesses
//! use scaled-down models, and absolute wall-clock speed is supplied by the
//! calibrated cluster simulator, not this kernel.
//!
//! [`socflow_nn`]: https://docs.rs/socflow-nn

use crate::{Shape, Tensor};

/// `C = A × B` for row-major matrices `A: (m, k)`, `B: (k, n)`.
///
/// Uses an ikj loop order so the innermost loop streams contiguously over a
/// row of `B` and a row of `C`.
///
/// # Panics
/// Panics if the operands are not rank-2 or the inner dimensions disagree.
///
/// ```
/// use socflow_tensor::{Tensor, linalg};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
/// assert_eq!(linalg::matmul(&a, &i), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape().as_matrix();
    let (k2, n) = b.shape().as_matrix();
    assert_eq!(k, k2, "matmul inner dims: ({m},{k}) x ({k2},{n})");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        for p in 0..k {
            let aip = ad[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow.iter()) {
                *c += aip * bv;
            }
        }
    }
    Tensor::from_vec(out, Shape::from([m, n]))
}

/// `C = Aᵀ × B` for `A: (k, m)`, `B: (k, n)` without materializing `Aᵀ`.
///
/// # Panics
/// Panics if the operands are not rank-2 or the shared dimension disagrees.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape().as_matrix();
    let (k2, n) = b.shape().as_matrix();
    assert_eq!(k, k2, "matmul_at_b shared dims: ({k},{m})ᵀ x ({k2},{n})");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow.iter()) {
                *c += av * bv;
            }
        }
    }
    Tensor::from_vec(out, Shape::from([m, n]))
}

/// `C = A × Bᵀ` for `A: (m, k)`, `B: (n, k)` without materializing `Bᵀ`.
///
/// # Panics
/// Panics if the operands are not rank-2 or the shared dimension disagrees.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape().as_matrix();
    let (n, k2) = b.shape().as_matrix();
    assert_eq!(k, k2, "matmul_a_bt shared dims: ({m},{k}) x ({n},{k2})ᵀ");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, Shape::from([m, n]))
}

/// Transpose of a rank-2 tensor.
///
/// # Panics
/// Panics if the operand is not rank-2.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = a.shape().as_matrix();
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_vec(out, Shape::from([n, m]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape().as_matrix();
        let (_, n) = b.shape().as_matrix();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    out[i * n + j] += a.data()[i * k + p] * b.data()[p * n + j];
                }
            }
        }
        Tensor::from_vec(out, Shape::from([m, n]))
    }

    fn rand_matrix(m: usize, n: usize, seed: u64) -> Tensor {
        // Simple LCG so this test has no RNG dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let data = (0..m * n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(data, Shape::from([m, n]))
    }

    fn assert_close(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let a = rand_matrix(7, 5, 1);
        let b = rand_matrix(5, 9, 2);
        assert_close(&matmul(&a, &b), &naive_matmul(&a, &b));
    }

    #[test]
    fn matmul_identity() {
        let a = rand_matrix(4, 4, 3);
        let mut id = Tensor::zeros([4, 4]);
        for i in 0..4 {
            id.set(&[i, i], 1.0);
        }
        assert_close(&matmul(&a, &id), &a);
        assert_close(&matmul(&id, &a), &a);
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let a = rand_matrix(6, 3, 4);
        let b = rand_matrix(6, 5, 5);
        assert_close(&matmul_at_b(&a, &b), &matmul(&transpose(&a), &b));
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let a = rand_matrix(3, 6, 6);
        let b = rand_matrix(5, 6, 7);
        assert_close(&matmul_a_bt(&a, &b), &matmul(&a, &transpose(&b)));
    }

    #[test]
    fn transpose_involution() {
        let a = rand_matrix(4, 7, 8);
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn one_by_one() {
        let a = Tensor::from_vec(vec![3.0], [1, 1]);
        let b = Tensor::from_vec(vec![4.0], [1, 1]);
        assert_eq!(matmul(&a, &b).data(), &[12.0]);
    }
}
