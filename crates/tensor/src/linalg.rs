//! Dense linear algebra: tiled, register-blocked matrix multiply and
//! transposes.
//!
//! These routines are the compute kernels behind [`socflow_nn`]'s linear and
//! (via im2col) convolution layers. Each product is computed by an
//! `MR × NR` micro-kernel that keeps a fixed-size accumulator tile in
//! registers and streams contiguously over the operands, so rustc
//! autovectorizes the inner loops without any nightly SIMD or external
//! dependencies. Edge tails (shapes that are not multiples of the tile) fall
//! back to scalar loops with the same accumulation order.
//!
//! **Numerics contract:** every kernel accumulates each output element
//! strictly sequentially over the shared dimension `p` in ascending order —
//! the same order as a naive triple loop. Tiling changes *which* elements are
//! computed together, never the floating-point summation order, so results
//! are bit-identical to the pre-tiled kernels and deterministic across runs.
//!
//! **Parallelism:** large products are split into fixed-size row panels of
//! the output (`ROWS_PER_CHUNK` rows each) and dispatched on the
//! [`crate::runtime`] worker pool. The panel decomposition depends only on
//! `m` — never on the thread count — and each panel is computed by the same
//! sequential micro-kernel writing a disjoint output region, so the
//! parallel kernels are bit-identical to the single-threaded ones at any
//! `SOCFLOW_THREADS` setting.
//!
//! Every entry point has an `_into` variant that writes into a caller-owned
//! [`Tensor`] (resizing its storage as needed) and a `_slices` variant that
//! operates on raw row-major buffers; the allocating wrappers remain for API
//! compatibility.
//!
//! [`socflow_nn`]: https://docs.rs/socflow-nn

use crate::profile::{KernelOp, Timer};
use crate::Tensor;
use std::cell::RefCell;

/// Rows of the register accumulator tile.
const MR: usize = 4;
/// Columns of the register accumulator tile (two 8-lane vectors on AVX2).
const NR: usize = 16;

thread_local! {
    /// Scratch panel used by [`matmul_a_bt_slices`] to pack a transposed
    /// `k × NR` tile of `B`. Thread-local so replica jobs and pool workers
    /// never contend; reused across calls so steady-state matmuls allocate
    /// nothing.
    static PACK_PANEL: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Rows of output per parallel panel. A multiple of `MR`, so interior panels
/// tile exactly like the single-threaded sweep; chosen from the problem
/// shape only (never the thread count) to keep the partition deterministic.
const ROWS_PER_CHUNK: usize = 32;

/// Minimum multiply-add count before a product takes the parallel path;
/// below this the pool round-trip costs more than the kernel itself. The
/// serial and parallel paths produce identical bytes, so this threshold
/// affects wall-clock only.
const PAR_MIN_WORK: usize = 1 << 18;

use crate::runtime::SendPtr;

/// Splits `m` output rows into shape-fixed panels and runs
/// `panel(i0, i1, out_rows)` for each on the worker pool. `out_rows` is the
/// `(i1 - i0) × n` sub-slice of `out` starting at row `i0`. Generic over the
/// element type so the f32 kernels and the i8→i32 integer GEMM share one
/// partitioner.
fn par_row_panels<T: Send>(
    out: &mut [T],
    m: usize,
    n: usize,
    panel: &(dyn Fn(usize, usize, &mut [T]) + Sync),
) {
    let chunks = m.div_ceil(ROWS_PER_CHUNK);
    let out_ptr = SendPtr::new(out);
    crate::runtime::parallel_for_chunks(chunks, &|c| {
        let i0 = c * ROWS_PER_CHUNK;
        let i1 = (i0 + ROWS_PER_CHUNK).min(m);
        // Safety: panels [i0, i1) are pairwise disjoint and in-bounds.
        let out_rows = unsafe { out_ptr.slice(i0 * n, (i1 - i0) * n) };
        panel(i0, i1, out_rows);
    });
}

/// Whether a product of this shape is worth dispatching on the pool.
fn worth_parallel(m: usize, k: usize, n: usize) -> bool {
    m > ROWS_PER_CHUNK && m * k * n >= PAR_MIN_WORK && crate::runtime::threads() > 1
}

// ---------------------------------------------------------------------------
// Micro-kernel accumulate steps: scalar reference + optional SIMD lanes
// ---------------------------------------------------------------------------
//
// The `simd` cargo feature swaps the micro-kernels' innermost accumulate
// steps for explicit `std::arch` lanes — SSE2 on x86_64 and NEON on aarch64,
// both part of their target's baseline ABI, so no runtime feature detection
// is needed. The SIMD bodies use a separate multiply and add (never FMA) and
// keep each accumulator lane's additions in the same ascending-`p` order as
// the scalar loop, so every output element sees the identical sequence of
// f32 roundings: scalar and SIMD builds are bitwise-identical
// (property-pinned in `tests/properties.rs`). The integer dot product is
// exact in i32, where ordering cannot matter at all.

/// Scalar reference for the f32 accumulate step: `acc[c] += av * brow[c]`
/// over the `NR` lanes. Kept compiled in every configuration — the SIMD
/// lanes are property-pinned against it.
#[cfg_attr(
    all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64")),
    allow(dead_code)
)]
#[inline(always)]
fn axpy_nr_scalar(acc: &mut [f32; NR], av: f32, brow: &[f32]) {
    for (c, &bv) in acc.iter_mut().zip(brow.iter()) {
        *c += av * bv;
    }
}

/// SSE2 f32 accumulate step: four 4-lane vectors cover the `NR = 16` tile.
/// `_mm_mul_ps` + `_mm_add_ps` (no FMA) round exactly like the scalar loop.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline(always)]
fn axpy_nr(acc: &mut [f32; NR], av: f32, brow: &[f32]) {
    debug_assert!(brow.len() >= NR);
    // Safety: SSE2 is part of the x86_64 baseline ABI; loads/stores are the
    // unaligned variants; both buffers hold at least NR elements.
    unsafe {
        use std::arch::x86_64::*;
        let avv = _mm_set1_ps(av);
        let mut lane = 0;
        while lane < NR {
            let b = _mm_loadu_ps(brow.as_ptr().add(lane));
            let c = _mm_loadu_ps(acc.as_ptr().add(lane));
            let r = _mm_add_ps(c, _mm_mul_ps(avv, b));
            _mm_storeu_ps(acc.as_mut_ptr().add(lane), r);
            lane += 4;
        }
    }
}

/// NEON f32 accumulate step (`vmulq_f32` + `vaddq_f32`, no fused multiply).
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
#[inline(always)]
fn axpy_nr(acc: &mut [f32; NR], av: f32, brow: &[f32]) {
    debug_assert!(brow.len() >= NR);
    // Safety: NEON is part of the aarch64 baseline ABI; both buffers hold at
    // least NR elements.
    unsafe {
        use std::arch::aarch64::*;
        let avv = vdupq_n_f32(av);
        let mut lane = 0;
        while lane < NR {
            let b = vld1q_f32(brow.as_ptr().add(lane));
            let c = vld1q_f32(acc.as_ptr().add(lane));
            let r = vaddq_f32(c, vmulq_f32(avv, b));
            vst1q_f32(acc.as_mut_ptr().add(lane), r);
            lane += 4;
        }
    }
}

/// Without the `simd` feature (or on other architectures) the accumulate
/// step *is* the scalar reference.
#[cfg(not(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64"))))]
#[inline(always)]
fn axpy_nr(acc: &mut [f32; NR], av: f32, brow: &[f32]) {
    axpy_nr_scalar(acc, av, brow);
}

/// Scalar reference for the integer dot product: widen to i32, accumulate
/// exactly. `a.len() == b.len()` must hold; the sum must stay within `i32`
/// (callers bound `k ≤ 2^17`, far below any layer in the model zoo).
#[cfg_attr(
    all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64")),
    allow(dead_code)
)]
#[inline(always)]
fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x as i32 * y as i32;
    }
    acc
}

/// SSE2 i8 dot product: sign-extend 16 bytes to i16 lanes, then
/// `_mm_madd_epi16` multiplies i16 pairs and sums them into i32 — exact,
/// since `|i8·i8| ≤ 127² = 16129` fits an i16 product pair summed into i32.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline(always)]
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    // Safety: SSE2 baseline; unaligned loads; tail handled in scalar.
    unsafe {
        use std::arch::x86_64::*;
        let k = a.len();
        let zero = _mm_setzero_si128();
        let mut acc = _mm_setzero_si128();
        let mut p = 0;
        while p + 16 <= k {
            let va = _mm_loadu_si128(a.as_ptr().add(p) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(p) as *const __m128i);
            // Sign-extend each byte half to i16: unpack into the high byte
            // of each i16 lane, then arithmetic-shift back down.
            let a_lo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, va), 8);
            let a_hi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, va), 8);
            let b_lo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, vb), 8);
            let b_hi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, vb), 8);
            acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, b_lo));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, b_hi));
            p += 16;
        }
        let mut lanes = [0i32; 4];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, acc);
        let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
        while p < k {
            sum += a[p] as i32 * b[p] as i32;
            p += 1;
        }
        sum
    }
}

/// NEON i8 dot product: `vmull_s8` widens 8 products to i16 (exact), then
/// `vpadalq_s16` folds pairs into i32 accumulators.
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
#[inline(always)]
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    // Safety: NEON baseline; tail handled in scalar.
    unsafe {
        use std::arch::aarch64::*;
        let k = a.len();
        let mut acc = vdupq_n_s32(0);
        let mut p = 0;
        while p + 8 <= k {
            let va = vld1_s8(a.as_ptr().add(p));
            let vb = vld1_s8(b.as_ptr().add(p));
            acc = vpadalq_s16(acc, vmull_s8(va, vb));
            p += 8;
        }
        let mut sum = vaddvq_s32(acc);
        while p < k {
            sum += a[p] as i32 * b[p] as i32;
            p += 1;
        }
        sum
    }
}

/// Without the `simd` feature the integer dot *is* the scalar reference.
#[cfg(not(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64"))))]
#[inline(always)]
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    dot_i8_scalar(a, b)
}

// ---------------------------------------------------------------------------
// C = A × B
// ---------------------------------------------------------------------------

/// `C = A × B` for row-major matrices `A: (m, k)`, `B: (k, n)`.
///
/// # Panics
/// Panics if the operands are not rank-2 or the inner dimensions disagree.
///
/// ```
/// use socflow_tensor::{Tensor, linalg};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
/// assert_eq!(linalg::matmul(&a, &i), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::default();
    matmul_into(a, b, &mut out);
    out
}

/// [`matmul`] writing into `out`, reusing its storage (resized as needed).
///
/// # Panics
/// Panics if the operands are not rank-2 or the inner dimensions disagree.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k) = a.shape().as_matrix();
    let (k2, n) = b.shape().as_matrix();
    assert_eq!(k, k2, "matmul inner dims: ({m},{k}) x ({k2},{n})");
    out.resize([m, n]);
    matmul_slices(a.data(), b.data(), out.data_mut(), m, k, n);
}

/// `C = A × B` on raw row-major slices: `a: (m, k)`, `b: (k, n)`,
/// `out: (m, n)`. `out` is fully overwritten.
///
/// # Panics
/// Panics (in debug builds via slice indexing) if the slice lengths do not
/// match the given dimensions.
pub fn matmul_slices(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul_slices: a length");
    assert_eq!(b.len(), k * n, "matmul_slices: b length");
    assert_eq!(out.len(), m * n, "matmul_slices: out length");
    let _t = Timer::start(KernelOp::Matmul);
    if worth_parallel(m, k, n) {
        par_row_panels(out, m, n, &|i0, i1, out_rows| {
            matmul_panel(&a[i0 * k..i1 * k], b, out_rows, i1 - i0, k, n);
        });
    } else {
        matmul_panel(a, b, out, m, k, n);
    }
}

/// Sequential `MR × NR` kernel over an `m`-row slice of `A`/`out`: the
/// original single-threaded sweep, reused verbatim by every parallel panel.
fn matmul_panel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut j = 0;
    // Full NR-wide column panels.
    while j + NR <= n {
        let mut i = 0;
        // MR × NR register tiles.
        while i + MR <= m {
            let mut acc = [[0.0f32; NR]; MR];
            for p in 0..k {
                let brow = &b[p * n + j..p * n + j + NR];
                for (mi, accrow) in acc.iter_mut().enumerate() {
                    let av = a[(i + mi) * k + p];
                    axpy_nr(accrow, av, brow);
                }
            }
            for (mi, accrow) in acc.iter().enumerate() {
                let orow = i + mi;
                out[orow * n + j..orow * n + j + NR].copy_from_slice(accrow);
            }
            i += MR;
        }
        // Row tail: fewer than MR rows left, still NR-wide.
        while i < m {
            let mut acc = [0.0f32; NR];
            for p in 0..k {
                let av = a[i * k + p];
                let brow = &b[p * n + j..p * n + j + NR];
                axpy_nr(&mut acc, av, brow);
            }
            out[i * n + j..i * n + j + NR].copy_from_slice(&acc);
            i += 1;
        }
        j += NR;
    }
    // Column tail: fewer than NR columns left, all rows.
    if j < n {
        for i in 0..m {
            let orow = &mut out[i * n + j..(i + 1) * n];
            orow.fill(0.0);
            for p in 0..k {
                let av = a[i * k + p];
                let brow = &b[p * n + j..(p + 1) * n];
                for (c, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *c += av * bv;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// C = Aᵀ × B
// ---------------------------------------------------------------------------

/// `C = Aᵀ × B` for `A: (k, m)`, `B: (k, n)` without materializing `Aᵀ`.
///
/// # Panics
/// Panics if the operands are not rank-2 or the shared dimension disagrees.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::default();
    matmul_at_b_into(a, b, &mut out);
    out
}

/// [`matmul_at_b`] writing into `out`, reusing its storage.
///
/// # Panics
/// Panics if the operands are not rank-2 or the shared dimension disagrees.
pub fn matmul_at_b_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (k, m) = a.shape().as_matrix();
    let (k2, n) = b.shape().as_matrix();
    assert_eq!(k, k2, "matmul_at_b shared dims: ({k},{m})ᵀ x ({k2},{n})");
    out.resize([m, n]);
    matmul_at_b_slices(a.data(), b.data(), out.data_mut(), m, k, n);
}

/// `C = Aᵀ × B` on raw row-major slices: `a: (k, m)`, `b: (k, n)`,
/// `out: (m, n)`. `out` is fully overwritten.
///
/// # Panics
/// Panics if the slice lengths do not match the given dimensions.
pub fn matmul_at_b_slices(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "matmul_at_b_slices: a length");
    assert_eq!(b.len(), k * n, "matmul_at_b_slices: b length");
    assert_eq!(out.len(), m * n, "matmul_at_b_slices: out length");
    let _t = Timer::start(KernelOp::MatmulAtB);
    if worth_parallel(m, k, n) {
        par_row_panels(out, m, n, &|i0, i1, out_rows| {
            matmul_at_b_panel(a, b, out_rows, i0, i1, m, k, n);
        });
    } else {
        matmul_at_b_panel(a, b, out, 0, m, m, k, n);
    }
}

/// Sequential kernel for output rows `i0..i1` of `C = Aᵀ × B`. Unlike
/// [`matmul_panel`], `a` cannot be row-sliced (row `i` of `Aᵀ` is the
/// stride-`m` column `i` of `A`), so the panel takes the full operands plus
/// a global row range; `out` holds only the panel's rows.
///
/// Identical tiling to `matmul_panel`; only the A addressing differs: the
/// MR values needed per `p` are contiguous in A's row `p`.
#[allow(clippy::too_many_arguments)]
fn matmul_at_b_panel(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i0: usize,
    i1: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let mut j = 0;
    while j + NR <= n {
        let mut i = i0;
        while i + MR <= i1 {
            let mut acc = [[0.0f32; NR]; MR];
            for p in 0..k {
                let apanel = &a[p * m + i..p * m + i + MR];
                let brow = &b[p * n + j..p * n + j + NR];
                for (accrow, &av) in acc.iter_mut().zip(apanel.iter()) {
                    axpy_nr(accrow, av, brow);
                }
            }
            for (mi, accrow) in acc.iter().enumerate() {
                let orow = i - i0 + mi;
                out[orow * n + j..orow * n + j + NR].copy_from_slice(accrow);
            }
            i += MR;
        }
        while i < i1 {
            let mut acc = [0.0f32; NR];
            for p in 0..k {
                let av = a[p * m + i];
                let brow = &b[p * n + j..p * n + j + NR];
                axpy_nr(&mut acc, av, brow);
            }
            let orow = i - i0;
            out[orow * n + j..orow * n + j + NR].copy_from_slice(&acc);
            i += 1;
        }
        j += NR;
    }
    if j < n {
        for i in i0..i1 {
            let li = i - i0;
            let orow = &mut out[li * n + j..(li + 1) * n];
            orow.fill(0.0);
            for p in 0..k {
                let av = a[p * m + i];
                let brow = &b[p * n + j..(p + 1) * n];
                for (c, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *c += av * bv;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// C = A × Bᵀ
// ---------------------------------------------------------------------------

/// `C = A × Bᵀ` for `A: (m, k)`, `B: (n, k)` without materializing `Bᵀ`.
///
/// # Panics
/// Panics if the operands are not rank-2 or the shared dimension disagrees.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::default();
    matmul_a_bt_into(a, b, &mut out);
    out
}

/// [`matmul_a_bt`] writing into `out`, reusing its storage.
///
/// # Panics
/// Panics if the operands are not rank-2 or the shared dimension disagrees.
pub fn matmul_a_bt_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k) = a.shape().as_matrix();
    let (n, k2) = b.shape().as_matrix();
    assert_eq!(k, k2, "matmul_a_bt shared dims: ({m},{k}) x ({n},{k2})ᵀ");
    out.resize([m, n]);
    matmul_a_bt_slices(a.data(), b.data(), out.data_mut(), m, k, n);
}

/// `C = A × Bᵀ` on raw row-major slices: `a: (m, k)`, `b: (n, k)`,
/// `out: (m, n)`. `out` is fully overwritten.
///
/// Packs each `NR`-row tile of `B` into a transposed `k × NR` panel (held in
/// thread-local scratch) so the same lane-parallel micro-kernel as
/// [`matmul_slices`] applies; per-element accumulation stays sequential over
/// `p`, bit-identical to a scalar dot product.
///
/// # Panics
/// Panics if the slice lengths do not match the given dimensions.
pub fn matmul_a_bt_slices(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul_a_bt_slices: a length");
    assert_eq!(b.len(), n * k, "matmul_a_bt_slices: b length");
    assert_eq!(out.len(), m * n, "matmul_a_bt_slices: out length");
    let _t = Timer::start(KernelOp::MatmulABt);
    if worth_parallel(m, k, n) {
        par_row_panels(out, m, n, &|i0, i1, out_rows| {
            matmul_a_bt_panel(&a[i0 * k..i1 * k], b, out_rows, i1 - i0, k, n);
        });
    } else {
        matmul_a_bt_panel(a, b, out, m, k, n);
    }
}

/// Sequential kernel over an `m`-row slice of `A`/`out` for `C = A × Bᵀ`.
/// Each executing thread packs `B` tiles into its own `PACK_PANEL`, so
/// parallel panels re-pack redundantly (~`k·n` extra reads per panel, a few
/// percent of the panel's `rows·k·n` multiply-adds) but never share scratch.
fn matmul_a_bt_panel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    PACK_PANEL.with(|panel| {
        let mut panel = panel.borrow_mut();
        panel.resize(k * NR, 0.0);
        let mut j = 0;
        while j + NR <= n {
            // Pack rows j..j+NR of B, transposed: panel[p * NR + nj] = B[j+nj][p].
            for nj in 0..NR {
                let brow = &b[(j + nj) * k..(j + nj + 1) * k];
                for (p, &bv) in brow.iter().enumerate() {
                    panel[p * NR + nj] = bv;
                }
            }
            let mut i = 0;
            while i + MR <= m {
                let mut acc = [[0.0f32; NR]; MR];
                for p in 0..k {
                    let brow = &panel[p * NR..(p + 1) * NR];
                    for (mi, accrow) in acc.iter_mut().enumerate() {
                        let av = a[(i + mi) * k + p];
                        axpy_nr(accrow, av, brow);
                    }
                }
                for (mi, accrow) in acc.iter().enumerate() {
                    let orow = i + mi;
                    out[orow * n + j..orow * n + j + NR].copy_from_slice(accrow);
                }
                i += MR;
            }
            while i < m {
                let mut acc = [0.0f32; NR];
                for p in 0..k {
                    let av = a[i * k + p];
                    let brow = &panel[p * NR..(p + 1) * NR];
                    axpy_nr(&mut acc, av, brow);
                }
                out[i * n + j..i * n + j + NR].copy_from_slice(&acc);
                i += 1;
            }
            j += NR;
        }
        // Column tail: plain sequential dot products (same order as packed path).
        if j < n {
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                for jj in j..n {
                    let brow = &b[jj * k..(jj + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in arow.iter().zip(brow.iter()) {
                        acc += av * bv;
                    }
                    out[i * n + jj] = acc;
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Integer GEMM: C(i32) = A(i8) × B(i8)ᵀ
// ---------------------------------------------------------------------------

/// `C = A × Bᵀ` over `i8` operands with exact `i32` accumulation:
/// `a: (m, k)` and `b: (n, k)` row-major — every output element is one
/// contiguous length-`k` dot product — writing `out: (m, n)`, fully
/// overwritten.
///
/// This is the NPU arm's compute kernel: integer accumulation is exact (no
/// rounding at any summation order), so the scalar, SIMD and row-parallel
/// paths are bitwise-identical by construction. Per-tensor scales are *not*
/// applied here; callers apply `sa·sb` once at the i32→f32 epilogue
/// ([`crate::quant::quantized_matmul`] does exactly that).
///
/// The accumulator bounds the shared dimension: `k · 127² < 2³¹` requires
/// `k ≤ 2¹⁷`, far above any layer in the model zoo.
///
/// # Panics
/// Panics if the slice lengths do not match the given dimensions.
pub fn matmul_i8_a_bt_slices(a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul_i8_a_bt_slices: a length");
    assert_eq!(b.len(), n * k, "matmul_i8_a_bt_slices: b length");
    assert_eq!(out.len(), m * n, "matmul_i8_a_bt_slices: out length");
    let _t = Timer::start(KernelOp::MatmulI8);
    if worth_parallel(m, k, n) {
        par_row_panels(out, m, n, &|i0, i1, out_rows| {
            matmul_i8_panel(&a[i0 * k..i1 * k], b, out_rows, i1 - i0, k, n);
        });
    } else {
        matmul_i8_panel(a, b, out, m, k, n);
    }
}

/// Sequential i8 dot-product kernel over an `m`-row slice of `A`/`out`.
/// Columns are walked in blocks of four so each `A` row stays register/L1
/// resident across several `B` rows; i32 exactness makes the blocking
/// order-irrelevant.
fn matmul_i8_panel(a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    const JB: usize = 4;
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + JB <= n {
            for jj in j..j + JB {
                orow[jj] = dot_i8(arow, &b[jj * k..(jj + 1) * k]);
            }
            j += JB;
        }
        while j < n {
            orow[j] = dot_i8(arow, &b[j * k..(j + 1) * k]);
            j += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Transpose
// ---------------------------------------------------------------------------

/// Tile edge for the blocked transpose; 32 × 32 f32 = 4 KiB, well inside L1.
const TR: usize = 32;

/// Transpose of a rank-2 tensor.
///
/// # Panics
/// Panics if the operand is not rank-2.
pub fn transpose(a: &Tensor) -> Tensor {
    let mut out = Tensor::default();
    transpose_into(a, &mut out);
    out
}

/// [`transpose`] writing into `out`, reusing its storage.
///
/// # Panics
/// Panics if the operand is not rank-2 or `out` aliases `a` (they are
/// distinct tensors by construction, so this cannot happen through safe code).
pub fn transpose_into(a: &Tensor, out: &mut Tensor) {
    let (m, n) = a.shape().as_matrix();
    out.resize([n, m]);
    transpose_slices(a.data(), out.data_mut(), m, n);
}

/// Blocked transpose on raw row-major slices: `a: (m, n)` → `out: (n, m)`.
///
/// # Panics
/// Panics if the slice lengths do not match the given dimensions.
pub fn transpose_slices(a: &[f32], out: &mut [f32], m: usize, n: usize) {
    assert_eq!(a.len(), m * n, "transpose_slices: a length");
    assert_eq!(out.len(), m * n, "transpose_slices: out length");
    let _t = Timer::start(KernelOp::Transpose);
    // TR × TR blocks keep both the source rows and destination rows resident
    // in L1 while the block is swapped.
    for ib in (0..m).step_by(TR) {
        let i_end = (ib + TR).min(m);
        for jb in (0..n).step_by(TR) {
            let j_end = (jb + TR).min(n);
            for i in ib..i_end {
                for j in jb..j_end {
                    out[j * m + i] = a[i * n + j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape().as_matrix();
        let (_, n) = b.shape().as_matrix();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    out[i * n + j] += a.data()[i * k + p] * b.data()[p * n + j];
                }
            }
        }
        Tensor::from_vec(out, Shape::from([m, n]))
    }

    fn rand_matrix(m: usize, n: usize, seed: u64) -> Tensor {
        // Simple LCG so this test has no RNG dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let data = (0..m * n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(data, Shape::from([m, n]))
    }

    fn assert_close(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let a = rand_matrix(7, 5, 1);
        let b = rand_matrix(5, 9, 2);
        assert_close(&matmul(&a, &b), &naive_matmul(&a, &b));
    }

    #[test]
    fn matmul_matches_naive_awkward_shapes() {
        // Tile-edge torture: 1×N, N×1, primes, exact multiples, tails
        // smaller than MR/NR on both axes.
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 23),
            (23, 7, 1),
            (4, 4, 16),
            (8, 3, 32),
            (5, 13, 17),
            (17, 1, 19),
            (16, 16, 16),
            (19, 29, 31),
            (3, 40, 15),
            (40, 2, 48),
        ] {
            let a = rand_matrix(m, k, (m * 100 + k) as u64);
            let b = rand_matrix(k, n, (k * 100 + n) as u64);
            assert_close(&matmul(&a, &b), &naive_matmul(&a, &b));
            assert_close(&matmul_at_b(&transpose(&a), &b), &naive_matmul(&a, &b));
            assert_close(&matmul_a_bt(&a, &transpose(&b)), &naive_matmul(&a, &b));
        }
    }

    #[test]
    fn into_variants_match_allocating() {
        let a = rand_matrix(9, 21, 11);
        let b = rand_matrix(21, 18, 12);
        let mut out = Tensor::from_vec(vec![7.0; 4], [2, 2]); // wrong shape: must resize
        matmul_into(&a, &b, &mut out);
        assert_eq!(out, matmul(&a, &b));

        let at = transpose(&a);
        matmul_at_b_into(&at, &b, &mut out);
        assert_eq!(out, matmul_at_b(&at, &b));

        let bt = transpose(&b);
        matmul_a_bt_into(&a, &bt, &mut out);
        assert_eq!(out, matmul_a_bt(&a, &bt));

        transpose_into(&a, &mut out);
        assert_eq!(out, transpose(&a));
    }

    #[test]
    fn matmul_identity() {
        let a = rand_matrix(4, 4, 3);
        let mut id = Tensor::zeros([4, 4]);
        for i in 0..4 {
            id.set(&[i, i], 1.0);
        }
        assert_close(&matmul(&a, &id), &a);
        assert_close(&matmul(&id, &a), &a);
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let a = rand_matrix(6, 3, 4);
        let b = rand_matrix(6, 5, 5);
        assert_close(&matmul_at_b(&a, &b), &matmul(&transpose(&a), &b));
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let a = rand_matrix(3, 6, 6);
        let b = rand_matrix(5, 6, 7);
        assert_close(&matmul_a_bt(&a, &b), &matmul(&a, &transpose(&b)));
    }

    #[test]
    fn transpose_involution() {
        let a = rand_matrix(4, 7, 8);
        assert_eq!(transpose(&transpose(&a)), a);
        // Also across the TR tile edge.
        let big = rand_matrix(37, 65, 9);
        assert_eq!(transpose(&transpose(&big)), big);
    }

    #[test]
    fn parallel_panels_match_serial_bitwise() {
        // Shapes above PAR_MIN_WORK with awkward row counts (tails smaller
        // than MR and ROWS_PER_CHUNK, primes, exact multiples).
        crate::runtime::set_threads(8);
        for &(m, k, n) in &[(97, 64, 48), (130, 70, 33), (256, 64, 17), (64, 64, 64)] {
            let a = rand_matrix(m, k, (m + k) as u64);
            let b = rand_matrix(k, n, (k + n + 7) as u64);
            assert!(worth_parallel(m, k, n) || m * k * n < PAR_MIN_WORK);

            let mut serial = vec![0.0f32; m * n];
            matmul_panel(a.data(), b.data(), &mut serial, m, k, n);
            let par = matmul(&a, &b);
            assert_eq!(par.data(), &serial[..], "matmul {m}x{k}x{n}");

            let at = transpose(&a);
            let mut serial = vec![0.0f32; m * n];
            matmul_at_b_panel(at.data(), b.data(), &mut serial, 0, m, m, k, n);
            let par = matmul_at_b(&at, &b);
            assert_eq!(par.data(), &serial[..], "matmul_at_b {m}x{k}x{n}");

            let bt = transpose(&b);
            let mut serial = vec![0.0f32; m * n];
            matmul_a_bt_panel(a.data(), bt.data(), &mut serial, m, k, n);
            let par = matmul_a_bt(&a, &bt);
            assert_eq!(par.data(), &serial[..], "matmul_a_bt {m}x{k}x{n}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn one_by_one() {
        let a = Tensor::from_vec(vec![3.0], [1, 1]);
        let b = Tensor::from_vec(vec![4.0], [1, 1]);
        assert_eq!(matmul(&a, &b).data(), &[12.0]);
    }

    /// Deterministic pseudo-random i8 buffer covering the full [-128, 127]
    /// range (including the -128 the quantizer never emits — the kernel must
    /// not care).
    fn rand_i8(len: usize, seed: u64) -> Vec<i8> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(99);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as i8
            })
            .collect()
    }

    /// The dispatched accumulate step (SIMD when the `simd` feature is on)
    /// is bitwise-identical to the scalar reference for arbitrary inputs.
    #[test]
    fn axpy_step_matches_scalar_bitwise() {
        for seed in 0..32u64 {
            let a = rand_matrix(1, NR, seed);
            let base = rand_matrix(1, NR, seed ^ 0xFFFF);
            let av = a.data()[0] * 1.7 - 0.3;
            let mut acc = [0.0f32; NR];
            let mut acc_ref = [0.0f32; NR];
            acc.copy_from_slice(base.data());
            acc_ref.copy_from_slice(base.data());
            axpy_nr(&mut acc, av, a.data());
            axpy_nr_scalar(&mut acc_ref, av, a.data());
            assert_eq!(
                acc.map(f32::to_bits),
                acc_ref.map(f32::to_bits),
                "seed {seed}"
            );
        }
    }

    /// The dispatched i8 dot (SIMD when enabled) equals the scalar widened
    /// reference exactly, across lengths that exercise every tail path.
    #[test]
    fn dot_i8_matches_scalar_exactly() {
        for &len in &[0usize, 1, 7, 8, 15, 16, 17, 31, 32, 33, 63, 100, 257] {
            let a = rand_i8(len, len as u64 + 1);
            let b = rand_i8(len, len as u64 * 31 + 7);
            assert_eq!(dot_i8(&a, &b), dot_i8_scalar(&a, &b), "len {len}");
        }
    }

    /// The i8 GEMM equals a naive widened-i32 triple loop exactly on
    /// awkward shapes (same tile-edge torture list as the f32 kernels).
    #[test]
    fn i8_gemm_matches_widened_reference() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 23),
            (23, 7, 1),
            (4, 4, 16),
            (8, 3, 32),
            (5, 13, 17),
            (17, 1, 19),
            (16, 16, 16),
            (19, 29, 31),
            (3, 40, 15),
            (40, 2, 48),
        ] {
            let a = rand_i8(m * k, (m * 100 + k) as u64);
            let b = rand_i8(n * k, (k * 100 + n) as u64);
            let mut out = vec![0i32; m * n];
            matmul_i8_a_bt_slices(&a, &b, &mut out, m, k, n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0i32;
                    for p in 0..k {
                        acc += a[i * k + p] as i32 * b[j * k + p] as i32;
                    }
                    assert_eq!(out[i * n + j], acc, "({i},{j}) of {m}x{k}x{n}");
                }
            }
        }
    }

    /// Row-parallel i8 GEMM is identical to the serial panel at 8 workers.
    #[test]
    fn parallel_i8_matches_serial() {
        crate::runtime::set_threads(8);
        for &(m, k, n) in &[(97, 64, 48), (130, 70, 33), (256, 64, 17)] {
            let a = rand_i8(m * k, (m + k) as u64);
            let b = rand_i8(n * k, (k + n + 7) as u64);
            let mut serial = vec![0i32; m * n];
            matmul_i8_panel(&a, &b, &mut serial, m, k, n);
            let mut par = vec![0i32; m * n];
            matmul_i8_a_bt_slices(&a, &b, &mut par, m, k, n);
            assert_eq!(par, serial, "matmul_i8 {m}x{k}x{n}");
        }
    }
}
