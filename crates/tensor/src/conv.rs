//! 2-D convolution and pooling kernels with hand-written backward passes.
//!
//! Convolution is implemented with the classic im2col lowering: each input
//! window becomes a row of a patch matrix, the convolution becomes one
//! [`matmul`](crate::linalg::matmul), and the backward pass reuses the same
//! patch matrix (`dW = dYᵀ·patches`) plus a `col2im` scatter (`dX`).
//!
//! The heavy entry points come in two flavors: allocating wrappers
//! ([`conv2d`], [`conv2d_backward`], [`im2col`], [`col2im`]) and
//! scratch-reusing variants ([`conv2d_scratch`], [`conv2d_backward_scratch`],
//! [`im2col_into`], [`col2im_into`]) that write into caller-owned buffers so
//! steady-state training allocates nothing per batch. The weight tensor is
//! consumed as a raw `(oc, ic·kh·kw)` view of its storage — no clone/reshape.
//!
//! All image tensors are NCHW.

use crate::profile::{KernelOp, Timer};
use crate::quant::{self, QuantParams};
use crate::runtime::{self, SendPtr};
use crate::{linalg, Shape, Tensor};

/// Minimum per-call element count before the im2col/col2im lowering is
/// dispatched on the worker pool; the partition is one chunk per batch
/// sample (shape-fixed), so serial and parallel paths are bit-identical and
/// the threshold affects wall-clock only.
const PAR_MIN_ELEMS: usize = 1 << 15;

/// Stride and zero-padding of a convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvParams {
    /// Window step in both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied on every spatial border.
    pub padding: usize,
}

impl ConvParams {
    /// Convenience constructor.
    ///
    /// # Panics
    /// Panics if `stride == 0`.
    pub fn new(stride: usize, padding: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        ConvParams { stride, padding }
    }

    /// Output spatial size for an input extent `in_size` and window `k`.
    ///
    /// # Panics
    /// Panics if the window does not fit the padded input.
    pub fn out_size(&self, in_size: usize, k: usize) -> usize {
        let padded = in_size + 2 * self.padding;
        assert!(padded >= k, "window {k} larger than padded input {padded}");
        (padded - k) / self.stride + 1
    }
}

impl Default for ConvParams {
    fn default() -> Self {
        ConvParams {
            stride: 1,
            padding: 0,
        }
    }
}

/// Lowers NCHW `input` into a patch matrix of shape
/// `(n·oh·ow, c·kh·kw)`; returns `(patches, oh, ow)`.
///
/// # Panics
/// Panics if `input` is not rank-4 or the window does not fit.
pub fn im2col(input: &Tensor, kh: usize, kw: usize, p: ConvParams) -> (Tensor, usize, usize) {
    let mut patches = Tensor::default();
    let (oh, ow) = im2col_into(input, kh, kw, p, &mut patches);
    (patches, oh, ow)
}

/// [`im2col`] writing into `patches`, reusing its storage; returns `(oh, ow)`.
///
/// # Panics
/// Panics if `input` is not rank-4 or the window does not fit.
pub fn im2col_into(
    input: &Tensor,
    kh: usize,
    kw: usize,
    p: ConvParams,
    patches: &mut Tensor,
) -> (usize, usize) {
    let (n, c, h, w) = input.shape().as_nchw();
    let oh = p.out_size(h, kh);
    let ow = p.out_size(w, kw);
    let rows = n * oh * ow;
    let cols = c * kh * kw;
    let _t = Timer::start(KernelOp::Im2col);
    patches.resize([rows, cols]);
    let out = patches.data_mut();
    let data = input.data();
    let sample_rows = oh * ow * cols;
    if n > 1 && rows * cols >= PAR_MIN_ELEMS && runtime::threads() > 1 {
        // One chunk per batch sample: sample `ni` owns exactly the patch
        // rows `[ni·oh·ow, (ni+1)·oh·ow)` — disjoint output regions, and
        // the per-sample fill/scatter below is the same code the serial
        // path runs, so the bytes are identical at any thread count.
        let out_ptr = SendPtr::new(out);
        runtime::parallel_for_chunks(n, &|ni| {
            // Safety: per-sample regions are disjoint and in-bounds.
            let sample = unsafe { out_ptr.slice(ni * sample_rows, sample_rows) };
            im2col_sample(data, sample, ni, c, h, w, kh, kw, oh, ow, p);
        });
    } else {
        for ni in 0..n {
            let sample = &mut out[ni * sample_rows..(ni + 1) * sample_rows];
            im2col_sample(data, sample, ni, c, h, w, kh, kw, oh, ow, p);
        }
    }
    (oh, ow)
}

/// Extracts the patch rows of batch sample `ni` into `out` (that sample's
/// `oh·ow × c·kh·kw` region of the patch matrix).
#[allow(clippy::too_many_arguments)]
fn im2col_sample(
    data: &[f32],
    out: &mut [f32],
    ni: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
    p: ConvParams,
) {
    let cols = c * kh * kw;
    // Zero first: padding positions are skipped by the scatter below and must
    // read as zero even when the buffer is recycled.
    out.fill(0.0);
    let pad = p.padding as isize;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = (oy * ow + ox) * cols;
            for ci in 0..c {
                let chan = (ni * c + ci) * h * w;
                for ky in 0..kh {
                    let iy = (oy * p.stride + ky) as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row = chan + iy as usize * w;
                    let dst = row + (ci * kh + ky) * kw;
                    for kx in 0..kw {
                        let ix = (ox * p.stride + kx) as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[dst + kx] = data[src_row + ix as usize];
                    }
                }
            }
        }
    }
}

/// Inverse of [`im2col`]: scatters (accumulates) a patch-matrix gradient back
/// into an NCHW gradient of shape `(n, c, h, w)`.
///
/// # Panics
/// Panics if the patch matrix shape is inconsistent with the arguments.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    patches: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    p: ConvParams,
) -> Tensor {
    let mut out = Tensor::default();
    col2im_into(patches, n, c, h, w, kh, kw, p, &mut out);
    out
}

/// [`col2im`] writing into `grad`, reusing its storage.
///
/// # Panics
/// Panics if the patch matrix shape is inconsistent with the arguments.
#[allow(clippy::too_many_arguments)]
pub fn col2im_into(
    patches: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    p: ConvParams,
    grad: &mut Tensor,
) {
    let oh = p.out_size(h, kh);
    let ow = p.out_size(w, kw);
    let cols = c * kh * kw;
    assert_eq!(
        patches.shape().dims(),
        &[n * oh * ow, cols],
        "patch matrix shape mismatch"
    );
    let _t = Timer::start(KernelOp::Col2im);
    grad.resize([n, c, h, w]);
    let out = grad.data_mut();
    let data = patches.data();
    let sample_len = c * h * w;
    if n > 1 && n * oh * ow * cols >= PAR_MIN_ELEMS && runtime::threads() > 1 {
        // One chunk per batch sample: sample `ni`'s patch rows scatter only
        // into its own `c·h·w` gradient region, and within a sample the
        // accumulation order is the serial one — bit-identical at any
        // thread count.
        let out_ptr = SendPtr::new(out);
        runtime::parallel_for_chunks(n, &|ni| {
            // Safety: per-sample regions are disjoint and in-bounds.
            let sample = unsafe { out_ptr.slice(ni * sample_len, sample_len) };
            col2im_sample(data, sample, ni, c, h, w, kh, kw, oh, ow, p);
        });
    } else {
        for ni in 0..n {
            let sample = &mut out[ni * sample_len..(ni + 1) * sample_len];
            col2im_sample(data, sample, ni, c, h, w, kh, kw, oh, ow, p);
        }
    }
}

/// Scatters batch sample `ni`'s patch-row gradients into `out` (that
/// sample's `c·h·w` region of the NCHW gradient).
#[allow(clippy::too_many_arguments)]
fn col2im_sample(
    data: &[f32],
    out: &mut [f32],
    ni: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
    p: ConvParams,
) {
    let cols = c * kh * kw;
    out.fill(0.0);
    let pad = p.padding as isize;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = ((ni * oh + oy) * ow + ox) * cols;
            for ci in 0..c {
                let chan = ci * h * w;
                for ky in 0..kh {
                    let iy = (oy * p.stride + ky) as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_row = chan + iy as usize * w;
                    let src = row + (ci * kh + ky) * kw;
                    for kx in 0..kw {
                        let ix = (ox * p.stride + kx) as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[dst_row + ix as usize] += data[src + kx];
                    }
                }
            }
        }
    }
}

/// Reusable scratch buffers for one convolution layer.
///
/// Holds the im2col patch matrix (shared between forward and backward) plus
/// the staging matrices of both passes. Owned by the layer that runs the
/// convolution; `Clone` yields empty buffers so cloning a layer never aliases
/// scratch storage (see [`crate::pool`] for the ownership rules).
#[derive(Debug, Default)]
pub struct ConvScratch {
    /// The im2col patch matrix of the last forward pass.
    pub patches: Tensor,
    /// `(n·oh·ow, oc)` staging matrix (forward output / backward gradient).
    mat: Tensor,
    /// Patch-gradient matrix of the backward pass.
    gpatches: Tensor,
    /// Quantized patch matrix of the integer forward path.
    qpatches: Vec<i8>,
    /// Quantized `(oc, ic·kh·kw)` weight view of the integer forward path.
    qweight: Vec<i8>,
    /// i32 accumulator of the integer forward path.
    imat: Vec<i32>,
}

impl Clone for ConvScratch {
    fn clone(&self) -> Self {
        ConvScratch::default()
    }
}

/// Forward 2-D convolution.
///
/// `input: (n, ic, h, w)`, `weight: (oc, ic, kh, kw)` → `(n, oc, oh, ow)`.
/// Also returns the im2col patch matrix so the backward pass can reuse it.
///
/// # Panics
/// Panics if channel counts disagree or the window does not fit.
pub fn conv2d(input: &Tensor, weight: &Tensor, p: ConvParams) -> (Tensor, Tensor) {
    let mut s = ConvScratch::default();
    let mut out = Tensor::default();
    conv2d_scratch(input, weight, p, &mut s, &mut out);
    (out, s.patches)
}

/// [`conv2d`] writing into `out` and reusing `scratch` across batches.
///
/// The patch matrix is left in `scratch.patches` for the backward pass.
///
/// # Panics
/// Panics if channel counts disagree or the window does not fit.
pub fn conv2d_scratch(
    input: &Tensor,
    weight: &Tensor,
    p: ConvParams,
    scratch: &mut ConvScratch,
    out: &mut Tensor,
) {
    let (n, ic, _h, _w) = input.shape().as_nchw();
    let (oc, ic2, kh, kw) = weight.shape().as_nchw();
    assert_eq!(ic, ic2, "conv2d channel mismatch: input {ic}, weight {ic2}");
    let (oh, ow) = im2col_into(input, kh, kw, p, &mut scratch.patches);
    let rows = n * oh * ow;
    let cols = ic * kh * kw;
    // (n·oh·ow, cols) × (oc, cols)ᵀ = (n·oh·ow, oc); the weight storage is
    // already the row-major (oc, cols) matrix — no clone/reshape needed.
    scratch.mat.resize([rows, oc]);
    linalg::matmul_a_bt_slices(
        scratch.patches.data(),
        weight.data(),
        scratch.mat.data_mut(),
        rows,
        cols,
        oc,
    );
    nhwc_rows_to_nchw_into(&scratch.mat, n, oc, oh, ow, out);
}

/// Integer-path forward convolution: the INT8 replica arm's conv kernel.
///
/// Lowers the raw input with im2col, quantizes the patch matrix and the
/// `(oc, ic·kh·kw)` weight view to symmetric per-tensor INT8, runs the
/// `i8×i8→i32` GEMM ([`linalg::matmul_i8_a_bt_slices`]) and applies both
/// scales once at the i32→f32 epilogue — no f32 fake-quant matmul anywhere
/// on this path. The patch scale is taken from the patch matrix itself
/// (padding zeros cannot raise max-|x|, so it equals the in-window input
/// scale).
///
/// On return `scratch.patches` holds the **dequantized** patch matrix — the
/// exact values the integer kernel consumed — so the standard
/// [`conv2d_backward_scratch`] differentiates the function the integer
/// kernel actually computed, unchanged. Returns the `(patches, weight)`
/// quantization parameters.
///
/// # Panics
/// Panics if channel counts disagree or the window does not fit.
pub fn conv2d_int8_scratch(
    input: &Tensor,
    weight: &Tensor,
    p: ConvParams,
    scratch: &mut ConvScratch,
    out: &mut Tensor,
) -> (QuantParams, QuantParams) {
    let (n, ic, _h, _w) = input.shape().as_nchw();
    let (oc, ic2, kh, kw) = weight.shape().as_nchw();
    assert_eq!(ic, ic2, "conv2d channel mismatch: input {ic}, weight {ic2}");
    let (oh, ow) = im2col_into(input, kh, kw, p, &mut scratch.patches);
    let rows = n * oh * ow;
    let cols = ic * kh * kw;
    let pp = QuantParams::from_tensor(&scratch.patches);
    let pw = QuantParams::from_tensor(weight);
    quant::quantize_into(&scratch.patches, pp, &mut scratch.qpatches);
    quant::quantize_into(weight, pw, &mut scratch.qweight);
    scratch.imat.clear();
    scratch.imat.resize(rows * oc, 0);
    linalg::matmul_i8_a_bt_slices(
        &scratch.qpatches,
        &scratch.qweight,
        &mut scratch.imat,
        rows,
        cols,
        oc,
    );
    let s = pp.scale * pw.scale;
    scratch.mat.resize([rows, oc]);
    for (o, &v) in scratch.mat.data_mut().iter_mut().zip(scratch.imat.iter()) {
        *o = v as f32 * s;
    }
    nhwc_rows_to_nchw_into(&scratch.mat, n, oc, oh, ow, out);
    // Replace the raw patches with their dequantized INT8 values for backward.
    let shape = scratch.patches.shape().clone();
    quant::dequantize_into(&scratch.qpatches, shape, pp, &mut scratch.patches);
    (pp, pw)
}

/// Backward 2-D convolution.
///
/// Given `grad_out: (n, oc, oh, ow)`, the forward `patches` matrix, the
/// `weight: (oc, ic, kh, kw)` and the input geometry, returns
/// `(grad_input, grad_weight)`.
///
/// # Panics
/// Panics on any geometry inconsistency.
pub fn conv2d_backward(
    grad_out: &Tensor,
    patches: &Tensor,
    weight: &Tensor,
    input_shape: &Shape,
    p: ConvParams,
) -> (Tensor, Tensor) {
    let mut s = ConvScratch::default();
    let mut gx = Tensor::default();
    let mut gw = Tensor::default();
    conv2d_backward_scratch(
        grad_out,
        patches,
        weight,
        input_shape,
        p,
        &mut s,
        &mut gx,
        &mut gw,
    );
    (gx, gw)
}

/// [`conv2d_backward`] reusing `scratch` staging buffers and writing the
/// gradients into `gx` / `gw`.
///
/// `patches` is the im2col matrix of the matching forward pass — usually
/// `scratch.patches` moved out by the caller (a layer caches the train-time
/// patches while the scratch may be overwritten by eval forwards in between).
///
/// # Panics
/// Panics on any geometry inconsistency.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward_scratch(
    grad_out: &Tensor,
    patches: &Tensor,
    weight: &Tensor,
    input_shape: &Shape,
    p: ConvParams,
    scratch: &mut ConvScratch,
    gx: &mut Tensor,
    gw: &mut Tensor,
) {
    let (n, ic, h, w) = input_shape.as_nchw();
    let (oc, _ic, kh, kw) = weight.shape().as_nchw();
    let (gn, goc, oh, ow) = grad_out.shape().as_nchw();
    assert_eq!((gn, goc), (n, oc), "grad_out batch/channel mismatch");
    let rows = n * oh * ow;
    let cols = ic * kh * kw;
    // (n·oh·ow, oc)
    nchw_to_nhwc_rows_into(grad_out, &mut scratch.mat);
    // dW = gmatᵀ × patches  →  (oc, ic·kh·kw)
    gw.resize([oc, ic, kh, kw]);
    linalg::matmul_at_b_slices(
        scratch.mat.data(),
        patches.data(),
        gw.data_mut(),
        oc,
        rows,
        cols,
    );
    // dPatches = gmat × Wmat  →  (n·oh·ow, ic·kh·kw)
    scratch.gpatches.resize([rows, cols]);
    linalg::matmul_slices(
        scratch.mat.data(),
        weight.data(),
        scratch.gpatches.data_mut(),
        rows,
        oc,
        cols,
    );
    col2im_into(&scratch.gpatches, n, ic, h, w, kh, kw, p, gx);
}

/// Reorders a `(n·oh·ow, c)` matrix (rows in NHWC order) into NCHW.
fn nhwc_rows_to_nchw_into(mat: &Tensor, n: usize, c: usize, oh: usize, ow: usize, t: &mut Tensor) {
    t.resize([n, c, oh, ow]);
    let out = t.data_mut();
    let data = mat.data();
    for ni in 0..n {
        for y in 0..oh {
            for x in 0..ow {
                let row = ((ni * oh + y) * ow + x) * c;
                for ci in 0..c {
                    out[((ni * c + ci) * oh + y) * ow + x] = data[row + ci];
                }
            }
        }
    }
}

/// Reorders an NCHW tensor into a `(n·h·w, c)` matrix (rows in NHWC order).
fn nchw_to_nhwc_rows_into(t: &Tensor, mat: &mut Tensor) {
    let (n, c, h, w) = t.shape().as_nchw();
    mat.resize([n * h * w, c]);
    let out = mat.data_mut();
    let data = t.data();
    for ni in 0..n {
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    out[((ni * h + y) * w + x) * c + ci] = data[((ni * c + ci) * h + y) * w + x];
                }
            }
        }
    }
}

/// Forward max pooling. Returns the pooled output and the flat argmax index
/// of each output element (for the backward scatter).
///
/// # Panics
/// Panics if `input` is not rank-4 or the window does not fit.
pub fn max_pool2d(input: &Tensor, k: usize, p: ConvParams) -> (Tensor, Vec<usize>) {
    let (n, c, h, w) = input.shape().as_nchw();
    let oh = p.out_size(h, k);
    let ow = p.out_size(w, k);
    let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
    let mut arg = vec![0usize; n * c * oh * ow];
    let data = input.data();
    let pad = p.padding as isize;
    for ni in 0..n {
        for ci in 0..c {
            let chan = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let o = ((ni * c + ci) * oh + oy) * ow + ox;
                    for ky in 0..k {
                        let iy = (oy * p.stride + ky) as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * p.stride + kx) as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = chan + iy as usize * w + ix as usize;
                            if data[idx] > out[o] {
                                out[o] = data[idx];
                                arg[o] = idx;
                            }
                        }
                    }
                }
            }
        }
    }
    (Tensor::from_vec(out, Shape::from([n, c, oh, ow])), arg)
}

/// Backward max pooling: routes each output gradient to its argmax input.
pub fn max_pool2d_backward(grad_out: &Tensor, argmax: &[usize], input_shape: &Shape) -> Tensor {
    let mut gx = vec![0.0f32; input_shape.len()];
    for (g, &idx) in grad_out.data().iter().zip(argmax.iter()) {
        gx[idx] += g;
    }
    Tensor::from_vec(gx, input_shape.clone())
}

/// Global average pooling over the spatial dimensions: `(n,c,h,w) → (n,c)`.
///
/// # Panics
/// Panics if `input` is not rank-4.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let (n, c, h, w) = input.shape().as_nchw();
    let hw = (h * w) as f32;
    let mut out = vec![0.0f32; n * c];
    let data = input.data();
    for i in 0..n * c {
        let s: f32 = data[i * h * w..(i + 1) * h * w].iter().sum();
        out[i] = s / hw;
    }
    Tensor::from_vec(out, Shape::from([n, c]))
}

/// Backward of [`global_avg_pool`]: spreads each `(n,c)` gradient uniformly
/// over the `(h, w)` window.
pub fn global_avg_pool_backward(grad_out: &Tensor, input_shape: &Shape) -> Tensor {
    let (n, c, h, w) = input_shape.as_nchw();
    let hw = (h * w) as f32;
    let mut gx = vec![0.0f32; input_shape.len()];
    let g = grad_out.data();
    for i in 0..n * c {
        let v = g[i] / hw;
        for e in &mut gx[i * h * w..(i + 1) * h * w] {
            *e = v;
        }
    }
    Tensor::from_vec(gx, input_shape.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.len()).map(|i| i as f32).collect();
        Tensor::from_vec(data, shape)
    }

    #[test]
    fn out_size_formula() {
        let p = ConvParams::new(1, 0);
        assert_eq!(p.out_size(5, 3), 3);
        let p = ConvParams::new(2, 1);
        assert_eq!(p.out_size(4, 3), 2);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: patches == input reordered (n*h*w, c)
        let x = seq_tensor([1, 2, 2, 2]);
        let (p, oh, ow) = im2col(&x, 1, 1, ConvParams::default());
        assert_eq!((oh, ow), (2, 2));
        assert_eq!(p.shape().dims(), &[4, 2]);
        // row (y=0,x=0) should be [x[0,0,0,0], x[0,1,0,0]] = [0, 4]
        assert_eq!(&p.data()[0..2], &[0.0, 4.0]);
    }

    #[test]
    fn conv2d_known_values() {
        // 3x3 input, 2x2 kernel of ones => each output = window sum
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            [1, 1, 3, 3],
        );
        let w = Tensor::ones([1, 1, 2, 2]);
        let (y, _) = conv2d(&x, &w, ConvParams::default());
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv2d_padding_keeps_size() {
        let x = Tensor::ones([2, 3, 4, 4]);
        let w = Tensor::ones([5, 3, 3, 3]);
        let (y, _) = conv2d(&x, &w, ConvParams::new(1, 1));
        assert_eq!(y.shape().dims(), &[2, 5, 4, 4]);
        // center outputs see all 27 ones
        assert_eq!(y.at(&[0, 0, 1, 1]), 27.0);
        // corner outputs see 2x2x3 = 12 ones
        assert_eq!(y.at(&[0, 0, 0, 0]), 12.0);
    }

    /// Finite-difference gradient check for conv2d.
    #[test]
    fn conv2d_gradcheck() {
        let p = ConvParams::new(1, 1);
        let x = Tensor::from_vec(
            (0..2 * 2 * 3 * 3).map(|i| (i as f32 * 0.7).sin()).collect(),
            [2, 2, 3, 3],
        );
        let w = Tensor::from_vec(
            (0..3 * 2 * 3 * 3)
                .map(|i| (i as f32 * 0.3).cos() * 0.5)
                .collect(),
            [3, 2, 3, 3],
        );
        let loss =
            |x: &Tensor, w: &Tensor| conv2d(x, w, p).0.data().iter().map(|v| v * v).sum::<f32>();
        let (y, patches) = conv2d(&x, &w, p);
        let grad_y = y.scale(2.0); // d(sum y^2)/dy
        let (gx, gw) = conv2d_backward(&grad_y, &patches, &w, x.shape(), p);

        let eps = 1e-3;
        for idx in [0usize, 5, 17, 30] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!(
                (num - gx.data()[idx]).abs() < 2e-2,
                "dx[{idx}]: numeric {num} vs analytic {}",
                gx.data()[idx]
            );
        }
        for idx in [0usize, 9, 25, 53] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!(
                (num - gw.data()[idx]).abs() < 2e-2,
                "dw[{idx}]: numeric {num} vs analytic {}",
                gw.data()[idx]
            );
        }
    }

    #[test]
    fn scratch_variants_match_allocating() {
        let p = ConvParams::new(1, 1);
        let x = Tensor::from_vec(
            (0..2 * 2 * 5 * 5).map(|i| (i as f32 * 0.7).sin()).collect(),
            [2, 2, 5, 5],
        );
        let w = Tensor::from_vec(
            (0..3 * 2 * 3 * 3)
                .map(|i| (i as f32 * 0.3).cos() * 0.5)
                .collect(),
            [3, 2, 3, 3],
        );
        let (y, patches) = conv2d(&x, &w, p);
        let gy = y.scale(2.0);
        let (gx, gw) = conv2d_backward(&gy, &patches, &w, x.shape(), p);

        // Prime the scratch with garbage by running a *different* shape first,
        // then check the reused buffers produce identical results.
        let mut s = ConvScratch::default();
        let mut out = Tensor::default();
        let x0 = Tensor::ones([1, 2, 4, 4]);
        conv2d_scratch(&x0, &w, p, &mut s, &mut out);
        conv2d_scratch(&x, &w, p, &mut s, &mut out);
        assert_eq!(out, y);
        assert_eq!(s.patches, patches);
        let mut gx2 = Tensor::default();
        let mut gw2 = Tensor::default();
        // Move the patches out, the way a layer caches them across passes.
        let pt = std::mem::take(&mut s.patches);
        conv2d_backward_scratch(&gy, &pt, &w, x.shape(), p, &mut s, &mut gx2, &mut gw2);
        assert_eq!(gx2, gx);
        assert_eq!(gw2, gw);
    }

    /// The integer conv forward must reproduce the widened-i32 reference
    /// bit for bit, leave dequantized patches behind for backward, and stay
    /// close to the f32 convolution.
    #[test]
    fn int8_conv_matches_widened_reference_exactly() {
        let p = ConvParams::new(1, 1);
        let (n, ic, h, w_, oc, kh, kw) = (2usize, 2, 5, 5, 3, 3, 3);
        let x = Tensor::from_vec(
            (0..n * ic * h * w_)
                .map(|i| (i as f32 * 0.7).sin())
                .collect(),
            [n, ic, h, w_],
        );
        let w = Tensor::from_vec(
            (0..oc * ic * kh * kw)
                .map(|i| (i as f32 * 0.3).cos() * 0.5)
                .collect(),
            [oc, ic, kh, kw],
        );
        let mut s = ConvScratch::default();
        let mut y8 = Tensor::default();
        let (pp, pw) = conv2d_int8_scratch(&x, &w, p, &mut s, &mut y8);

        // Reference: quantize the raw patches and weight, accumulate in i32.
        let (patches, oh, ow) = im2col(&x, kh, kw, p);
        assert_eq!(pp.scale, QuantParams::from_tensor(&patches).scale);
        let cols = ic * kh * kw;
        let qp = quant::quantize(&patches, pp);
        let qw = quant::quantize(&w, pw);
        let scale = pp.scale * pw.scale;
        let mut expect = Tensor::zeros([n, oc, oh, ow]);
        for ni in 0..n {
            for j in 0..oc {
                for y in 0..oh {
                    for xx in 0..ow {
                        let row = ((ni * oh + y) * ow + xx) * cols;
                        let mut acc = 0i32;
                        for ci in 0..cols {
                            acc += qp[row + ci] as i32 * qw[j * cols + ci] as i32;
                        }
                        expect.data_mut()[((ni * oc + j) * oh + y) * ow + xx] = acc as f32 * scale;
                    }
                }
            }
        }
        assert_eq!(y8, expect);

        // Patches left behind are the dequantized values the kernel saw.
        assert_eq!(
            s.patches,
            quant::dequantize(&qp, patches.shape().clone(), pp)
        );

        // And the whole thing stays close to the f32 convolution.
        let (y32, _) = conv2d(&x, &w, p);
        let dot: f32 = y8.data().iter().zip(y32.data()).map(|(a, b)| a * b).sum();
        let cos = dot / (y8.l2_norm() * y32.l2_norm());
        assert!(cos > 0.98, "cos {cos}");
    }

    #[test]
    fn col2im_adjoint_of_im2col() {
        // <im2col(x), p> == <x, col2im(p)> for all x, p (adjoint property).
        let p = ConvParams::new(2, 1);
        let x = seq_tensor([1, 2, 4, 4]);
        let (patches, _, _) = im2col(&x, 3, 3, p);
        let probe = Tensor::from_vec(
            (0..patches.len())
                .map(|i| ((i * 7 % 13) as f32) - 6.0)
                .collect(),
            patches.shape().clone(),
        );
        let lhs = patches.dot(&probe);
        let back = col2im(&probe, 1, 2, 4, 4, 3, 3, p);
        let rhs = x.dot(&back);
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    /// The batch-parallel im2col/col2im paths must be bitwise-identical to
    /// composing the per-sample kernel serially — the shape is chosen to
    /// cross `PAR_MIN_ELEMS` so the pool path actually runs.
    #[test]
    fn parallel_im2col_and_col2im_match_serial_bitwise() {
        crate::runtime::set_threads(8);
        let (n, c, h, w, kh, kw) = (4usize, 8, 16, 16, 3, 3);
        let p = ConvParams::new(1, 1);
        let x = Tensor::from_vec(
            (0..n * c * h * w)
                .map(|i| ((i * 31 % 97) as f32) * 0.37 - 5.0)
                .collect(),
            [n, c, h, w],
        );
        let mut patches = Tensor::default();
        let (oh, ow) = im2col_into(&x, kh, kw, p, &mut patches);
        let cols = c * kh * kw;
        assert!(
            n * oh * ow * cols >= PAR_MIN_ELEMS,
            "shape must cross the parallel threshold"
        );
        let sample_rows = oh * ow * cols;
        let mut expect = vec![f32::NAN; n * sample_rows];
        for ni in 0..n {
            im2col_sample(
                x.data(),
                &mut expect[ni * sample_rows..(ni + 1) * sample_rows],
                ni,
                c,
                h,
                w,
                kh,
                kw,
                oh,
                ow,
                p,
            );
        }
        assert_eq!(patches.data(), &expect[..]);

        let probe = Tensor::from_vec(
            (0..patches.len())
                .map(|i| ((i * 7 % 13) as f32) - 6.0)
                .collect(),
            patches.shape().clone(),
        );
        let mut grad = Tensor::default();
        col2im_into(&probe, n, c, h, w, kh, kw, p, &mut grad);
        let sample_len = c * h * w;
        let mut gexpect = vec![f32::NAN; n * sample_len];
        for ni in 0..n {
            col2im_sample(
                probe.data(),
                &mut gexpect[ni * sample_len..(ni + 1) * sample_len],
                ni,
                c,
                h,
                w,
                kh,
                kw,
                oh,
                ow,
                p,
            );
        }
        assert_eq!(grad.data(), &gexpect[..]);
    }

    #[test]
    fn max_pool_forward_and_backward() {
        let x = Tensor::from_vec(
            vec![
                1.0, 3.0, 2.0, 4.0, 5.0, 6.0, 8.0, 7.0, 9.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0,
            ],
            [1, 1, 4, 4],
        );
        let (y, arg) = max_pool2d(&x, 2, ConvParams::new(2, 0));
        assert_eq!(y.data(), &[6.0, 8.0, 9.0, 6.0]);
        let g = Tensor::ones([1, 1, 2, 2]);
        let gx = max_pool2d_backward(&g, &arg, x.shape());
        assert_eq!(gx.sum(), 4.0);
        assert_eq!(gx.data()[5], 1.0); // the 6.0 in the top-left window
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let x = seq_tensor([2, 3, 2, 2]);
        let y = global_avg_pool(&x);
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(y.at(&[0, 0]), 1.5); // mean(0,1,2,3)
        let g = Tensor::ones([2, 3]);
        let gx = global_avg_pool_backward(&g, x.shape());
        assert!((gx.sum() - 6.0).abs() < 1e-6);
        assert!((gx.data()[0] - 0.25).abs() < 1e-6);
    }
}
