use serde::{Deserialize, Serialize};

/// The dimensions of a [`Tensor`](crate::Tensor), outermost first.
///
/// A `Shape` is an ordered list of dimension sizes. Tensors are stored
/// row-major, so the last dimension is contiguous in memory. An empty shape
/// denotes a scalar with one element.
///
/// ```
/// use socflow_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension sizes, outermost first.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// Shape of a scalar (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// `true` if the shape holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Interprets this shape as a 2-D `(rows, cols)` matrix.
    ///
    /// # Panics
    /// Panics if the rank is not 2.
    pub fn as_matrix(&self) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "expected rank-2 shape, got {self}");
        (self.0[0], self.0[1])
    }

    /// Interprets this shape as NCHW image batch `(n, c, h, w)`.
    ///
    /// # Panics
    /// Panics if the rank is not 4.
    pub fn as_nchw(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.rank(), 4, "expected rank-4 (NCHW) shape, got {self}");
        (self.0[0], self.0[1], self.0[2], self.0[3])
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn len_is_product() {
        assert_eq!(Shape::from([2, 3, 4]).len(), 24);
        assert_eq!(Shape::from([5]).len(), 5);
        assert_eq!(Shape::from([0, 10]).len(), 0);
        assert!(Shape::from([0, 10]).is_empty());
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([7]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn as_matrix_and_nchw() {
        assert_eq!(Shape::from([3, 5]).as_matrix(), (3, 5));
        assert_eq!(Shape::from([2, 3, 8, 8]).as_nchw(), (2, 3, 8, 8));
    }

    #[test]
    #[should_panic(expected = "rank-2")]
    fn as_matrix_wrong_rank_panics() {
        Shape::from([3]).as_matrix();
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
