//! Symmetric per-tensor INT8 quantization.
//!
//! This module provides the numeric substrate for SoCFlow's NPU training
//! path. Mobile NPUs (Hexagon DSP and friends) execute INT8 multiply-
//! accumulate with i32 accumulators; training on them requires quantizing
//! weights, activations and gradients. We implement:
//!
//! - [`QuantParams`]: a symmetric scale chosen from the tensor's max-|x|;
//! - [`quantize`] / [`dequantize`] round-trips;
//! - [`fake_quant`]: quantize-dequantize in f32, the standard
//!   quantization-aware-training forward transform whose backward is the
//!   straight-through estimator (identity inside the clip range);
//! - [`quantized_matmul`]: an actual INT8×INT8→i32 GEMM (backed by the
//!   register-blocked integer kernel in [`crate::linalg`]) — the execution
//!   path of the mixed-precision INT8 replica arm, with per-tensor scales
//!   applied once at the i32→f32 epilogue.
//!
//! The NiTi-style integer optimizer in `socflow-nn` builds on these
//! primitives.

use crate::profile::{KernelOp, Timer};
use crate::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// Quantization range of signed INT8 (symmetric; -128 is unused so the range
/// is symmetric around zero, as in most NPU kernels).
pub const INT8_MAX: f32 = 127.0;

/// A low-precision number format supported by mobile NPUs.
///
/// The SoCFlow paper's §5 notes that newer NPUs (Snapdragon 8gen1/8gen2)
/// support INT4/INT8/INT16/FP16 concurrently; this enum parameterizes the
/// fake-quantization transform so training can run in any of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantFormat {
    /// 4-bit signed integer, symmetric (±7).
    Int4,
    /// 8-bit signed integer, symmetric (±127).
    Int8,
    /// 16-bit signed integer, symmetric (±32767).
    Int16,
    /// IEEE 754 half precision (10-bit mantissa).
    Fp16,
}

impl QuantFormat {
    /// Maximum representable integer magnitude of the symmetric grid
    /// (unused for [`QuantFormat::Fp16`]).
    pub fn grid_max(self) -> f32 {
        match self {
            QuantFormat::Int4 => 7.0,
            QuantFormat::Int8 => 127.0,
            QuantFormat::Int16 => 32767.0,
            QuantFormat::Fp16 => f32::NAN, // not a fixed grid
        }
    }

    /// Bytes per value on the wire.
    pub fn wire_bytes(self) -> f64 {
        match self {
            QuantFormat::Int4 => 0.5,
            QuantFormat::Int8 => 1.0,
            QuantFormat::Int16 | QuantFormat::Fp16 => 2.0,
        }
    }

    /// Fake-quantizes a tensor to this format: integer formats quantize to
    /// the symmetric grid scaled by max-|x|; FP16 rounds the mantissa to
    /// 10 bits (flushing below-half-min-normal values to zero).
    pub fn fake_quant(self, t: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.fake_quant_into(t, &mut out);
        out
    }

    /// [`QuantFormat::fake_quant`] writing into `out`, reusing its storage.
    ///
    /// The quantize→dequantize round-trip is fused into a single output pass
    /// (one read of `t` for the scale, one read-transform-write), so the INT8
    /// side of mixed precision produces no intermediate tensor.
    pub fn fake_quant_into(self, t: &Tensor, out: &mut Tensor) {
        let _timer = Timer::start(KernelOp::Quant);
        out.resize(t.shape().clone());
        let od = out.data_mut();
        match self {
            QuantFormat::Fp16 => {
                for (o, &v) in od.iter_mut().zip(t.data()) {
                    *o = fp16_round(v);
                }
            }
            _ => {
                let m = t.abs_max();
                let gm = self.grid_max();
                let scale = if m == 0.0 { 1.0 } else { m / gm };
                for (o, &v) in od.iter_mut().zip(t.data()) {
                    *o = (v / scale).round().clamp(-gm, gm) * scale;
                }
            }
        }
    }
}

impl std::fmt::Display for QuantFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QuantFormat::Int4 => "INT4",
            QuantFormat::Int8 => "INT8",
            QuantFormat::Int16 => "INT16",
            QuantFormat::Fp16 => "FP16",
        };
        f.write_str(s)
    }
}

/// Rounds an f32 to the nearest representable IEEE half-precision value
/// (returned as f32).
pub fn fp16_round(v: f32) -> f32 {
    if !v.is_finite() {
        return v;
    }
    // clamp to f16 range
    const F16_MAX: f32 = 65504.0;
    if v > F16_MAX {
        return F16_MAX;
    }
    if v < -F16_MAX {
        return -F16_MAX;
    }
    if v.abs() < 6.1e-5 {
        // subnormal range: quantize to multiples of the smallest subnormal
        const SUB: f32 = 5.960_464_5e-8;
        return (v / SUB).round() * SUB;
    }
    // keep 10 mantissa bits: round in the scaled-integer domain
    let bits = v.to_bits();
    let shift = 13u32; // 23 - 10 mantissa bits
    let mask = (1u32 << shift) - 1;
    let rounded = bits.wrapping_add(1 << (shift - 1)) & !mask;
    f32::from_bits(rounded)
}

/// Symmetric per-tensor quantization parameters: `real = scale * int`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real-value magnitude represented by one integer step.
    pub scale: f32,
}

impl QuantParams {
    /// Chooses a scale so that the tensor's maximum magnitude maps to ±127.
    ///
    /// An all-zero tensor gets a scale of 1.0 (any scale round-trips zeros).
    pub fn from_tensor(t: &Tensor) -> Self {
        let m = t.abs_max();
        QuantParams {
            scale: if m == 0.0 { 1.0 } else { m / INT8_MAX },
        }
    }

    /// Quantizes one value to the clipped INT8 grid.
    pub fn quantize_value(&self, v: f32) -> i8 {
        let q = (v / self.scale).round();
        q.clamp(-INT8_MAX, INT8_MAX) as i8
    }

    /// Recovers the real value of one quantized step.
    pub fn dequantize_value(&self, q: i8) -> f32 {
        q as f32 * self.scale
    }
}

/// Quantizes an f32 tensor to INT8 with the given parameters.
pub fn quantize(t: &Tensor, p: QuantParams) -> Vec<i8> {
    t.data().iter().map(|&v| p.quantize_value(v)).collect()
}

/// [`quantize`] writing into a caller-owned buffer (cleared and refilled),
/// so steady-state integer forwards allocate nothing.
pub fn quantize_into(t: &Tensor, p: QuantParams, out: &mut Vec<i8>) {
    let _timer = Timer::start(KernelOp::Quant);
    out.clear();
    out.extend(t.data().iter().map(|&v| p.quantize_value(v)));
}

/// Quantizes a rank-2 tensor's *transpose* into `out`: `t: (r, c)` yields a
/// row-major `(c, r)` i8 buffer. This feeds the `(n, k)` operand of
/// [`crate::linalg::matmul_i8_a_bt_slices`] without materializing an f32
/// transpose first.
///
/// # Panics
/// Panics if `t` is not rank-2.
pub fn quantize_transposed_into(t: &Tensor, p: QuantParams, out: &mut Vec<i8>) {
    let _timer = Timer::start(KernelOp::Quant);
    let (r, c) = t.shape().as_matrix();
    out.clear();
    out.resize(r * c, 0);
    let d = t.data();
    for (i, row) in d.chunks_exact(c).enumerate() {
        for (j, &v) in row.iter().enumerate() {
            out[j * r + i] = p.quantize_value(v);
        }
    }
}

/// Dequantizes an INT8 buffer back to an f32 tensor of the given shape.
///
/// # Panics
/// Panics if `q.len() != shape.len()`.
pub fn dequantize(q: &[i8], shape: impl Into<Shape>, p: QuantParams) -> Tensor {
    let data = q.iter().map(|&v| p.dequantize_value(v)).collect();
    Tensor::from_vec(data, shape)
}

/// [`dequantize`] writing into `out`, reusing its storage.
///
/// `dequantize_into(quantize(x), ..)` is bitwise-identical to
/// [`fake_quant`]`(x)` for finite inputs (both compute
/// `round(clamp(v/s)) * s` with the same operand order), so integer-path
/// layers can cache the dequantized activations and leave every backward
/// pass untouched.
pub fn dequantize_into(q: &[i8], shape: impl Into<Shape>, p: QuantParams, out: &mut Tensor) {
    let _timer = Timer::start(KernelOp::Quant);
    out.resize(shape.into());
    let od = out.data_mut();
    assert_eq!(q.len(), od.len(), "dequantize_into: length mismatch");
    for (o, &v) in od.iter_mut().zip(q) {
        *o = p.dequantize_value(v);
    }
}

/// Quantize-dequantize in f32 (the QAT "fake quantization" transform).
///
/// Forward: `round(clamp(x/s)) * s`. The corresponding backward pass is the
/// straight-through estimator: gradients flow unchanged for values inside the
/// representable range and are zeroed outside; [`ste_mask`] computes that
/// mask.
pub fn fake_quant(t: &Tensor, p: QuantParams) -> Tensor {
    let _timer = Timer::start(KernelOp::Quant);
    t.map(|v| {
        let q = (v / p.scale).round().clamp(-INT8_MAX, INT8_MAX);
        q * p.scale
    })
}

/// [`fake_quant`] applied in place: fuses quantize→dequantize into one
/// read-modify-write sweep over the tensor's storage.
pub fn fake_quant_inplace(t: &mut Tensor, p: QuantParams) {
    let _timer = Timer::start(KernelOp::Quant);
    t.map_inplace(|v| {
        let q = (v / p.scale).round().clamp(-INT8_MAX, INT8_MAX);
        q * p.scale
    });
}

/// Straight-through-estimator mask: 1.0 where the value is inside the
/// representable range `±127·scale`, else 0.0.
pub fn ste_mask(t: &Tensor, p: QuantParams) -> Tensor {
    let lim = INT8_MAX * p.scale;
    t.map(|v| if v.abs() <= lim { 1.0 } else { 0.0 })
}

/// Worst-case absolute rounding error of [`fake_quant`] for in-range values:
/// half a quantization step.
pub fn max_rounding_error(p: QuantParams) -> f32 {
    p.scale * 0.5
}

/// INT8×INT8→i32 matrix multiply, dequantized to f32 at the end.
///
/// `a: (m, k)` with params `pa`; `b: (k, n)` with params `pb`. The result
/// equals `dequant(int_gemm(quant(a), quant(b)))`, exactly what an NPU kernel
/// would produce.
///
/// # Panics
/// Panics if the inner dimensions disagree or buffer lengths are wrong.
pub fn quantized_matmul(
    a: &[i8],
    pa: QuantParams,
    b: &[i8],
    pb: QuantParams,
    m: usize,
    k: usize,
    n: usize,
) -> Tensor {
    assert_eq!(a.len(), m * k, "lhs buffer length");
    assert_eq!(b.len(), k * n, "rhs buffer length");
    // Pack Bᵀ so both operands of every dot product are contiguous, then run
    // the register-blocked integer kernel. i32 accumulation is exact, so the
    // packing changes nothing numerically.
    let mut bt = vec![0i8; n * k];
    for (p, brow) in b.chunks_exact(n).enumerate() {
        for (j, &bv) in brow.iter().enumerate() {
            bt[j * k + p] = bv;
        }
    }
    let mut out = vec![0i32; m * n];
    crate::linalg::matmul_i8_a_bt_slices(a, &bt, &mut out, m, k, n);
    let s = pa.scale * pb.scale;
    Tensor::from_vec(
        out.into_iter().map(|v| v as f32 * s).collect(),
        Shape::from([m, n]),
    )
}

/// Adds simulated quantization noise to a gradient tensor, as integer
/// training does when gradients themselves are kept in INT8.
///
/// The noise is deterministic (hash of the index and `seed`), uniform in
/// ±half a quantization step of the gradient's own scale — the worst-case
/// rounding error model used in integer-training analyses.
pub fn gradient_quant_noise(grad: &Tensor, seed: u64) -> Tensor {
    let mut out = Tensor::default();
    gradient_quant_noise_into(grad, seed, &mut out);
    out
}

/// [`gradient_quant_noise`] writing into `out`, reusing its storage.
pub fn gradient_quant_noise_into(grad: &Tensor, seed: u64, out: &mut Tensor) {
    let _timer = Timer::start(KernelOp::Quant);
    let p = QuantParams::from_tensor(grad);
    let half = max_rounding_error(p);
    out.resize(grad.shape().clone());
    for (i, (o, &g)) in out.data_mut().iter_mut().zip(grad.data()).enumerate() {
        let mut h = seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51AFD7ED558CCD);
        h ^= h >> 33;
        let u = (h >> 11) as f32 / (1u64 << 53) as f32; // [0,1)
        *o = g + (2.0 * u - 1.0) * half;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip_within_half_step() {
        let t = Tensor::from_vec(vec![-1.0, -0.33, 0.0, 0.5, 0.99, 1.27], [6]);
        let p = QuantParams::from_tensor(&t);
        let q = quantize(&t, p);
        let back = dequantize(&q, [6], p);
        for (orig, rec) in t.data().iter().zip(back.data()) {
            assert!((orig - rec).abs() <= max_rounding_error(p) + 1e-6);
        }
    }

    #[test]
    fn extremes_map_to_127() {
        let t = Tensor::from_vec(vec![-2.0, 2.0], [2]);
        let p = QuantParams::from_tensor(&t);
        let q = quantize(&t, p);
        assert_eq!(q, vec![-127, 127]);
    }

    #[test]
    fn zero_tensor_roundtrips() {
        let t = Tensor::zeros([4]);
        let p = QuantParams::from_tensor(&t);
        assert_eq!(p.scale, 1.0);
        let q = quantize(&t, p);
        assert_eq!(dequantize(&q, [4], p), t);
    }

    #[test]
    fn fake_quant_equals_quant_dequant() {
        let t = Tensor::from_vec((0..64).map(|i| (i as f32 * 0.37).sin()).collect(), [64]);
        let p = QuantParams::from_tensor(&t);
        let fq = fake_quant(&t, p);
        let qd = dequantize(&quantize(&t, p), [64], p);
        for (a, b) in fq.data().iter().zip(qd.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn fused_variants_match_allocating() {
        let t = Tensor::from_vec((0..96).map(|i| (i as f32 * 0.37).sin()).collect(), [96]);
        let p = QuantParams::from_tensor(&t);
        let mut inplace = t.clone();
        fake_quant_inplace(&mut inplace, p);
        assert_eq!(inplace, fake_quant(&t, p));

        for f in [
            QuantFormat::Int4,
            QuantFormat::Int8,
            QuantFormat::Int16,
            QuantFormat::Fp16,
        ] {
            // recycled buffer of the wrong shape must be resized + overwritten
            let mut out = Tensor::full([3], 9.0);
            f.fake_quant_into(&t, &mut out);
            assert_eq!(out, f.fake_quant(&t));
        }

        let mut noisy = Tensor::default();
        gradient_quant_noise_into(&t, 42, &mut noisy);
        assert_eq!(noisy, gradient_quant_noise(&t, 42));
    }

    #[test]
    fn ste_mask_zeroes_out_of_range() {
        let p = QuantParams { scale: 0.01 }; // range ±1.27
        let t = Tensor::from_vec(vec![0.5, -1.2, 2.0, -3.0], [4]);
        assert_eq!(ste_mask(&t, p).data(), &[1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn quantized_matmul_close_to_f32() {
        let m = 4;
        let k = 6;
        let n = 5;
        let a = Tensor::from_vec(
            (0..m * k).map(|i| (i as f32 * 0.13).sin()).collect(),
            [m, k],
        );
        let b = Tensor::from_vec(
            (0..k * n).map(|i| (i as f32 * 0.29).cos()).collect(),
            [k, n],
        );
        let pa = QuantParams::from_tensor(&a);
        let pb = QuantParams::from_tensor(&b);
        let qa = quantize(&a, pa);
        let qb = quantize(&b, pb);
        let qres = quantized_matmul(&qa, pa, &qb, pb, m, k, n);
        let fres = crate::linalg::matmul(&a, &b);
        // Error per output element is bounded by k * (sa*|b| + sb*|a| + sa*sb) / 2-ish;
        // for unit-magnitude inputs a loose bound of k * 2.5 * max_step suffices.
        let tol = k as f32 * 1.5 * (pa.scale + pb.scale);
        for (qv, fv) in qres.data().iter().zip(fres.data()) {
            assert!((qv - fv).abs() <= tol, "{qv} vs {fv} (tol {tol})");
        }
    }

    #[test]
    fn quantized_matmul_matches_widened_reference_exactly() {
        // The integer path is exact: i32 accumulation with one f32 scale at
        // the end must reproduce the naive widened product bit for bit.
        let (m, k, n) = (7, 19, 11);
        let mut state = 0x5EEDu64;
        let mut next_i8 = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as i8
        };
        let a: Vec<i8> = (0..m * k).map(|_| next_i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| next_i8()).collect();
        let pa = QuantParams { scale: 0.031 };
        let pb = QuantParams { scale: 0.27 };
        let got = quantized_matmul(&a, pa, &b, pb, m, k, n);
        let s = pa.scale * pb.scale;
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for p in 0..k {
                    acc += a[i * k + p] as i32 * b[p * n + j] as i32;
                }
                assert_eq!(got.data()[i * n + j], acc as f32 * s);
            }
        }
    }

    #[test]
    fn into_variants_match_allocating_quantize() {
        let t = Tensor::from_vec(
            (0..24).map(|i| ((i as f32) * 0.7).sin() * 2.0).collect(),
            [4, 6],
        );
        let p = QuantParams::from_tensor(&t);

        let mut q = vec![5i8; 3]; // wrong size: must be cleared and refilled
        quantize_into(&t, p, &mut q);
        assert_eq!(q, quantize(&t, p));

        let mut back = Tensor::full([2], 9.0);
        dequantize_into(&q, [4, 6], p, &mut back);
        assert_eq!(back, dequantize(&q, [4, 6], p));

        // dequantize(quantize(x)) must be bitwise-identical to fake_quant(x):
        // integer-path layers rely on this to cache activations for backward.
        let fq = fake_quant(&t, p);
        assert_eq!(
            back.data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u32>>(),
            fq.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        );

        // transposed quantization == quantize(transpose)
        let mut qt = Vec::new();
        quantize_transposed_into(&t, p, &mut qt);
        let tt = crate::linalg::transpose(&t);
        assert_eq!(qt, quantize(&tt, p));
    }

    #[test]
    fn formats_rank_by_fidelity() {
        // finer formats must reconstruct with smaller error
        let t = Tensor::from_vec(
            (0..256).map(|i| ((i as f32) * 0.41).sin() * 3.0).collect(),
            [256],
        );
        let err = |f: QuantFormat| f.fake_quant(&t).sub(&t).l2_norm();
        let (e4, e8, e16) = (
            err(QuantFormat::Int4),
            err(QuantFormat::Int8),
            err(QuantFormat::Int16),
        );
        let ef16 = err(QuantFormat::Fp16);
        assert!(e4 > e8, "INT4 {e4} must be coarser than INT8 {e8}");
        assert!(e8 > e16, "INT8 {e8} must be coarser than INT16 {e16}");
        assert!(ef16 < e8, "FP16 {ef16} should beat INT8 {e8} on this range");
    }

    #[test]
    fn format_fake_quant_matches_int8_path() {
        let t = Tensor::from_vec((0..64).map(|i| (i as f32 * 0.37).sin()).collect(), [64]);
        let via_format = QuantFormat::Int8.fake_quant(&t);
        let via_params = fake_quant(&t, QuantParams::from_tensor(&t));
        for (a, b) in via_format.data().iter().zip(via_params.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn fp16_round_properties() {
        // exactly representable values survive
        for v in [0.0f32, 1.0, -2.5, 0.125, 65504.0] {
            assert_eq!(fp16_round(v), v, "{v}");
        }
        // overflow clamps
        assert_eq!(fp16_round(1e6), 65504.0);
        assert_eq!(fp16_round(-1e6), -65504.0);
        // relative error below 2^-10 for normal values
        for v in [std::f32::consts::PI, 1234.567, -0.003_456_7] {
            let r = fp16_round(v);
            assert!(((r - v) / v).abs() < 1.0 / 1024.0, "{v} → {r}");
        }
        // idempotent
        let r = fp16_round(std::f32::consts::E);
        assert_eq!(fp16_round(r), r);
    }

    #[test]
    fn wire_bytes_per_format() {
        assert_eq!(QuantFormat::Int4.wire_bytes(), 0.5);
        assert_eq!(QuantFormat::Int8.wire_bytes(), 1.0);
        assert_eq!(QuantFormat::Fp16.wire_bytes(), 2.0);
    }

    #[test]
    fn gradient_noise_bounded_and_deterministic() {
        let g = Tensor::from_vec((0..32).map(|i| (i as f32 - 16.0) * 0.1).collect(), [32]);
        let p = QuantParams::from_tensor(&g);
        let n1 = gradient_quant_noise(&g, 42);
        let n2 = gradient_quant_noise(&g, 42);
        assert_eq!(n1, n2, "same seed must give identical noise");
        let n3 = gradient_quant_noise(&g, 43);
        assert_ne!(n1, n3, "different seeds should differ");
        let half = max_rounding_error(p);
        for (orig, noisy) in g.data().iter().zip(n1.data()) {
            assert!((orig - noisy).abs() <= half + 1e-6);
        }
    }
}
