//! Deterministic intra-op parallel runtime.
//!
//! A persistent worker pool shared by every kernel in the process. The pool
//! is spawned once (first use), sized by the `SOCFLOW_THREADS` environment
//! variable (or [`set_threads`], e.g. from a `--threads` CLI flag), and
//! reused for the lifetime of the process — no per-epoch thread spawn churn.
//!
//! ## Determinism contract
//!
//! The core primitive, [`parallel_for_chunks`], runs `body(0..chunks)` where
//! the *chunk decomposition is chosen by the caller from the problem shape
//! alone* — never from the thread count. Each chunk writes a disjoint,
//! statically assigned region of the output, and every kernel built on top
//! accumulates within a chunk in exactly the same order as the
//! single-threaded code. Which OS thread executes a chunk is scheduling
//! noise; the bytes produced are identical for 1, 2, or N threads. This is
//! what lets the engine's byte-exact determinism and resume guarantees
//! survive parallel execution (property-tested in `tests/`).
//!
//! ## Blocking and re-entrancy
//!
//! The submitting thread always participates: it claims chunks itself and
//! only then waits for stragglers, so a task completes even when every
//! worker is busy. Calls made *from* a worker thread (nested parallelism)
//! run all chunks inline, in order, on that worker — same partition, same
//! bytes, no deadlock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// One in-flight `parallel_for_chunks` call. Workers claim chunk indices
/// from `next`; the last finisher flips `done` and wakes the submitter.
struct Task {
    /// Type- and lifetime-erased pointer to the caller's chunk body. Safety:
    /// the submitting thread owns the referent and does not return from
    /// [`parallel_for_chunks`] until `remaining == 0`, so the pointer is
    /// live whenever a worker dereferences it.
    body: *const (dyn Fn(usize) + Sync),
    chunks: usize,
    next: AtomicUsize,
    remaining: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// Safety: `body` is only dereferenced while the submitter blocks in
// `parallel_for_chunks` (see `Task::body`); all other fields are Sync.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    /// Claims and runs chunks until none are left. Returns whether this
    /// call executed the final chunk (and thus signalled completion).
    fn help(&self, pool: &Pool) {
        let timing = crate::profile::enabled();
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.chunks {
                return;
            }
            let t0 = timing.then(Instant::now);
            // Safety: claim succeeded, so the submitter is still waiting
            // and `body` is live.
            unsafe { (*self.body)(i) };
            if let Some(t0) = t0 {
                pool.busy_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            pool.chunks.fetch_add(1, Ordering::Relaxed);
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut done = self.done.lock().unwrap();
                *done = true;
                self.done_cv.notify_all();
            }
        }
    }
}

/// Pool shared state: a FIFO of tasks that want helpers, plus counters.
struct Pool {
    queue: Mutex<VecDeque<Arc<Task>>>,
    work_cv: Condvar,
    /// Worker-participation budget (what [`threads`] reports). Workers
    /// beyond this limit exist but stay parked.
    target: AtomicUsize,
    /// Workers actually spawned so far (pool only ever grows).
    spawned: Mutex<usize>,
    // Cumulative counters since process start / last `reset_stats`.
    tasks: AtomicU64,
    chunks: AtomicU64,
    jobs: AtomicU64,
    busy_nanos: AtomicU64,
    wall_nanos: AtomicU64,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// True on pool worker threads; makes nested parallel calls run inline.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn env_threads() -> usize {
    std::env::var("SOCFLOW_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn pool() -> &'static Pool {
    let pool = POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        work_cv: Condvar::new(),
        target: AtomicUsize::new(env_threads()),
        spawned: Mutex::new(0),
        tasks: AtomicU64::new(0),
        chunks: AtomicU64::new(0),
        jobs: AtomicU64::new(0),
        busy_nanos: AtomicU64::new(0),
        wall_nanos: AtomicU64::new(0),
    });
    ensure_workers(pool);
    pool
}

/// Spawns workers up to `target - 1` (the submitting thread is the N-th
/// lane). Workers are never torn down; shrinking the target just parks the
/// surplus on the queue condvar.
fn ensure_workers(pool: &'static Pool) {
    let want = pool.target.load(Ordering::Relaxed).saturating_sub(1);
    let mut spawned = pool.spawned.lock().unwrap();
    while *spawned < want {
        let id = *spawned;
        std::thread::Builder::new()
            .name(format!("socflow-worker-{id}"))
            .spawn(move || worker_loop(pool))
            .expect("spawn socflow worker");
        *spawned += 1;
    }
}

fn worker_loop(pool: &'static Pool) {
    IN_WORKER.with(|f| f.set(true));
    loop {
        let task = {
            let mut q = pool.queue.lock().unwrap();
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = pool.work_cv.wait(q).unwrap();
            }
        };
        task.help(pool);
    }
}

/// Current worker-participation budget (including the submitting thread).
pub fn threads() -> usize {
    pool().target.load(Ordering::Relaxed).max(1)
}

/// Sets the worker-participation budget. Values are clamped to at least 1.
/// Growing spawns the missing workers; shrinking parks the surplus. Safe to
/// call at any time — the partitioning of every kernel is independent of
/// this value, so results never change, only wall-clock.
pub fn set_threads(n: usize) {
    let pool = pool();
    pool.target.store(n.max(1), Ordering::Relaxed);
    ensure_workers(pool);
}

/// True when called from a pool worker thread (nested parallel calls run
/// inline there).
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Runs `body(i)` for every `i in 0..chunks`, possibly on several threads.
///
/// The caller picks `chunks` from the problem shape alone; each chunk must
/// touch a disjoint region of any shared output. Chunks may run in any
/// order and on any thread, so determinism requires (and all in-tree
/// kernels guarantee) that chunk bodies are order-independent: they only
/// write their own region, with a fixed internal accumulation order.
///
/// Degenerate cases (`chunks <= 1`, a single-thread budget, or a call from
/// inside a worker) run inline, in index order, with no synchronization.
pub fn parallel_for_chunks(chunks: usize, body: &(dyn Fn(usize) + Sync)) {
    if chunks == 0 {
        return;
    }
    let pool = pool();
    let budget = pool.target.load(Ordering::Relaxed);
    if chunks == 1 || budget <= 1 || in_worker() {
        for i in 0..chunks {
            body(i);
        }
        return;
    }

    let timing = crate::profile::enabled();
    let t0 = timing.then(Instant::now);

    // Erase the borrow lifetime: `Task` stores a raw pointer and this
    // function does not return until every chunk has completed, so the
    // referent outlives every dereference. See `Task::body`.
    let body_static: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(body) };
    let task = Arc::new(Task {
        body: body_static as *const _,
        chunks,
        next: AtomicUsize::new(0),
        remaining: AtomicUsize::new(chunks),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });

    // Enqueue one helper handle per extra lane; surplus helpers find
    // `next >= chunks` and exit without touching `body`.
    let helpers = (budget - 1).min(chunks - 1);
    {
        let mut q = pool.queue.lock().unwrap();
        for _ in 0..helpers {
            q.push_back(Arc::clone(&task));
        }
    }
    if helpers == 1 {
        pool.work_cv.notify_one();
    } else {
        pool.work_cv.notify_all();
    }

    pool.tasks.fetch_add(1, Ordering::Relaxed);
    // The submitter works too: guarantees progress even if all workers are
    // wedged on other tasks.
    task.help(pool);
    let mut done = task.done.lock().unwrap();
    while !*done {
        done = task.done_cv.wait(done).unwrap();
    }
    drop(done);
    if let Some(t0) = t0 {
        pool.wall_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// A one-shot job for [`run_scoped`]; may borrow from the caller's stack.
pub type ScopedJob<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// Runs a batch of independent one-shot jobs on the pool and waits for all
/// of them — the pool-backed replacement for per-epoch `std::thread::scope`
/// spawns. Jobs may borrow from the caller's stack frame.
pub fn run_scoped<'scope>(jobs: Vec<ScopedJob<'scope>>) {
    let n = jobs.len();
    if n == 0 {
        return;
    }
    pool().jobs.fetch_add(n as u64, Ordering::Relaxed);
    let slots: Vec<Mutex<Option<ScopedJob<'scope>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    parallel_for_chunks(n, &|i| {
        if let Some(job) = slots[i].lock().unwrap().take() {
            job();
        }
    });
}

/// Splits `out` into fixed-size chunks of `chunk_len` elements (the last
/// may be short) and runs `body(i, chunk_i)` for each on the pool. The
/// partition depends only on `out.len()` and `chunk_len` — never the thread
/// count — so any reduction whose chunk bodies are internally ordered is
/// bit-identical at every `SOCFLOW_THREADS` setting.
///
/// # Panics
/// Panics if `chunk_len == 0`.
pub fn parallel_for_slice_chunks(
    out: &mut [f32],
    chunk_len: usize,
    body: &(dyn Fn(usize, &mut [f32]) + Sync),
) {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let len = out.len();
    if len == 0 {
        return;
    }
    let chunks = len.div_ceil(chunk_len);
    let base = SendPtr::new(out);
    parallel_for_chunks(chunks, &|c| {
        let lo = c * chunk_len;
        let hi = (lo + chunk_len).min(len);
        // Safety: chunk ranges are pairwise disjoint and in-bounds.
        let chunk = unsafe { base.slice(lo, hi - lo) };
        body(c, chunk);
    });
}

/// Crate-internal wrapper that lets kernels hand disjoint sub-slices of one
/// output buffer (`f32` accumulators, `i32` integer-GEMM outputs, …) to pool
/// workers; every chunk derives a non-overlapping range from it.
pub(crate) struct SendPtr<T>(*mut T);
// Safety: only ever used to produce disjoint `&mut [T]` ranges.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Captures the base pointer of `out`.
    pub(crate) fn new(out: &mut [T]) -> SendPtr<T> {
        SendPtr(out.as_mut_ptr())
    }

    /// Derives the mutable sub-slice `[off, off + len)`.
    ///
    /// # Safety
    /// The range must be in-bounds of the original slice and disjoint from
    /// every other range derived from this pointer while both are live.
    // The `&self -> &mut` shape is the point of the wrapper: disjointness is
    // the caller's obligation, stated above, exactly like `from_raw_parts_mut`.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slice(&self, off: usize, len: usize) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(off), len)
    }
}

/// A snapshot of cumulative pool activity (see [`stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Current worker-participation budget.
    pub threads: usize,
    /// `parallel_for_chunks` calls that took the parallel path.
    pub tasks: u64,
    /// Chunks executed across all tasks.
    pub chunks: u64,
    /// One-shot jobs submitted through [`run_scoped`].
    pub jobs: u64,
    /// Nanoseconds of chunk execution summed over all lanes. Collected only
    /// while the kernel profiler ([`crate::profile`]) is enabled; 0 otherwise.
    pub busy_nanos: u64,
    /// Submitter-side wall nanoseconds of parallel regions (same gating as
    /// `busy_nanos`). `busy_nanos / wall_nanos` is the effective parallelism.
    pub wall_nanos: u64,
}

/// Returns cumulative pool counters since process start or the last
/// [`reset_stats`]. Chunk/wall timing is only collected while the kernel
/// profiler is enabled, mirroring `socflow_tensor::profile`.
pub fn stats() -> PoolStats {
    let p = pool();
    PoolStats {
        threads: p.target.load(Ordering::Relaxed).max(1),
        tasks: p.tasks.load(Ordering::Relaxed),
        chunks: p.chunks.load(Ordering::Relaxed),
        jobs: p.jobs.load(Ordering::Relaxed),
        busy_nanos: p.busy_nanos.load(Ordering::Relaxed),
        wall_nanos: p.wall_nanos.load(Ordering::Relaxed),
    }
}

/// Zeroes all cumulative pool counters.
pub fn reset_stats() {
    let p = pool();
    p.tasks.store(0, Ordering::Relaxed);
    p.chunks.store(0, Ordering::Relaxed);
    p.jobs.store(0, Ordering::Relaxed);
    p.busy_nanos.store(0, Ordering::Relaxed);
    p.wall_nanos.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn covers_every_chunk_exactly_once() {
        set_threads(4);
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_chunks(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn disjoint_writes_land() {
        set_threads(4);
        let mut out = vec![0u64; 64];
        let base = out.as_mut_ptr() as usize;
        parallel_for_chunks(64, &|i| {
            // Safety: each chunk writes only its own element.
            unsafe { *(base as *mut u64).add(i) = i as u64 * 3 };
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        set_threads(4);
        let total = AtomicUsize::new(0);
        parallel_for_chunks(8, &|_| {
            parallel_for_chunks(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn run_scoped_executes_all_jobs_and_allows_borrows() {
        set_threads(4);
        let mut results = [0usize; 10];
        {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = results
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    Box::new(move || {
                        *slot = i + 1;
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_scoped(jobs);
        }
        assert_eq!(results, [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn thread_budget_is_clamped_and_grows() {
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(3);
        assert_eq!(threads(), 3);
    }
}
