//! # socflow-bench
//!
//! Shared harness code for the experiment benches that regenerate every
//! table and figure of the paper (see DESIGN.md §3 for the index). Each
//! bench target is a `harness = false` binary under `benches/`, run by
//! `cargo bench --bench <id>`.
//!
//! Two fidelity levels, as everywhere in this reproduction: accuracies are
//! measured by really training width-scaled models; times/energies come
//! from the calibrated cluster simulation at paper scale.
//!
//! ## Runtime knobs
//!
//! - `SOCFLOW_EPOCHS` — epochs per training run (default 20);
//! - `SOCFLOW_SAMPLES` — scaled training-set size (default 4096).

use socflow::config::{MethodSpec, SocFlowConfig, TrainJobSpec};
use socflow::engine::{Engine, Workload};
use socflow::report::RunResult;
use socflow::timemodel::{SyncCollective, TimeModel};
use socflow_cluster::calibration;
use socflow_data::DatasetPreset;
use socflow_nn::models::ModelKind;
use socflow_telemetry::{Event, MemorySink, Summary};
use std::sync::Arc;

/// One of the paper's eight evaluation workloads (Table 3 rows).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadDef {
    /// Row label, matching the paper.
    pub name: &'static str,
    /// Architecture.
    pub model: ModelKind,
    /// Dataset.
    pub preset: DatasetPreset,
    /// Global (per-group) batch size.
    pub batch: usize,
    /// Scaled model width for real training.
    pub width: f32,
    /// Learning rate.
    pub lr: f32,
    /// `true` for the transfer-learning workload (pretrain on CINIC-10).
    pub transfer: bool,
}

/// The paper's eight workloads in Table 3 order.
pub fn paper_workloads() -> Vec<WorkloadDef> {
    vec![
        WorkloadDef {
            name: "MobileNet",
            model: ModelKind::MobileNetV1,
            preset: DatasetPreset::Cifar10,
            batch: 256,
            width: 0.22,
            lr: 0.05,
            transfer: false,
        },
        WorkloadDef {
            name: "VGG11",
            model: ModelKind::Vgg11,
            preset: DatasetPreset::Cifar10,
            batch: 64,
            width: 0.22,
            lr: 0.04,
            transfer: false,
        },
        WorkloadDef {
            name: "ResNet18",
            model: ModelKind::ResNet18,
            preset: DatasetPreset::Cifar10,
            batch: 64,
            width: 0.18,
            lr: 0.04,
            transfer: false,
        },
        WorkloadDef {
            name: "VGG11-CelebA",
            model: ModelKind::Vgg11,
            preset: DatasetPreset::CelebA,
            batch: 64,
            width: 0.22,
            lr: 0.04,
            transfer: false,
        },
        WorkloadDef {
            name: "ResNet18-CelebA",
            model: ModelKind::ResNet18,
            preset: DatasetPreset::CelebA,
            batch: 64,
            width: 0.18,
            lr: 0.04,
            transfer: false,
        },
        WorkloadDef {
            name: "LeNet5-EMNIST",
            model: ModelKind::LeNet5,
            preset: DatasetPreset::Emnist,
            batch: 64,
            width: 0.5,
            lr: 0.05,
            transfer: false,
        },
        WorkloadDef {
            name: "LeNet5-FMNIST",
            model: ModelKind::LeNet5,
            preset: DatasetPreset::FashionMnist,
            batch: 64,
            width: 0.5,
            lr: 0.05,
            transfer: false,
        },
        WorkloadDef {
            name: "ResNet50-Finetune",
            model: ModelKind::ResNet50,
            preset: DatasetPreset::Cifar10,
            batch: 64,
            width: 0.1,
            lr: 0.02,
            transfer: true,
        },
    ]
}

/// Epochs per run (env `SOCFLOW_EPOCHS`, default 20).
pub fn epochs() -> usize {
    std::env::var("SOCFLOW_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

/// Scaled dataset size (env `SOCFLOW_SAMPLES`, default 4096).
pub fn samples() -> usize {
    std::env::var("SOCFLOW_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096)
}

/// Scaled input size in pixels for all accuracy runs.
pub const INPUT_SIZE: usize = 8;

/// Builds the job spec for a workload × method.
pub fn build_spec(
    def: &WorkloadDef,
    method: MethodSpec,
    socs: usize,
    n_epochs: usize,
) -> TrainJobSpec {
    let mut s = TrainJobSpec::new(def.model, def.preset, method);
    s.socs = socs;
    s.global_batch = def.batch;
    s.epochs = n_epochs;
    s.lr = def.lr;
    s.seed = 42;
    s
}

/// Builds the scaled workload, running the CINIC-10 pretraining stage for
/// the transfer-learning row.
pub fn build_workload(spec: &TrainJobSpec, def: &WorkloadDef) -> Workload {
    let w = Workload::standard(spec, samples(), INPUT_SIZE, def.width);
    if !def.transfer {
        return w;
    }
    // pretrain on the CINIC-10 stand-in (same categories, different
    // source distribution), then fine-tune on the target workload
    let mut pre_spec = *spec;
    pre_spec.preset = DatasetPreset::Cinic10;
    pre_spec.method = MethodSpec::Local;
    pre_spec.epochs = 4;
    pre_spec.seed = spec.seed ^ 0x51C0;
    let pre_w = Workload::standard(&pre_spec, samples(), INPUT_SIZE, def.width);
    let mut engine = Engine::new(pre_spec, pre_w);
    let weights = engine.pretrain_weights();
    w.with_init_weights(weights)
}

/// One labelled run.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Method legend name.
    pub name: &'static str,
    /// Full run result.
    pub result: RunResult,
}

/// Runs the full method comparison for a workload, reusing accuracy curves
/// within the three accuracy classes (synchronous SGD, federated,
/// SoCFlow) and pricing each method with the time model:
///
/// - PS / RING / HiPress / 2D-Paral are the *same* SGD stream — trained
///   once (via RING), then re-priced;
/// - FedAvg / T-FedAvg share the federated stream;
/// - Ours is trained with its α/β controller.
pub fn run_comparison(
    def: &WorkloadDef,
    socs: usize,
    n_epochs: usize,
    groups: usize,
) -> Vec<MethodRun> {
    let ring_spec = build_spec(def, MethodSpec::Ring, socs, n_epochs);
    let workload = build_workload(&ring_spec, def);

    let ring = Engine::new(ring_spec, workload.clone()).run();
    let fed_spec = build_spec(def, MethodSpec::FedAvg, socs, n_epochs);
    let fed = Engine::new(fed_spec, workload.clone()).run();
    // topology keeps the requested group count (intra-board groups at the
    // paper's scale); accuracy streams are capped so the scaled dataset
    // keeps the paper's steps-per-aggregation regime (DESIGN.md §6)
    let ours_cfg = SocFlowConfig {
        accuracy_streams: Some(groups.min(4)),
        ..SocFlowConfig::with_groups(groups)
    };
    let ours_spec = build_spec(def, MethodSpec::SocFlow(ours_cfg), socs, n_epochs);
    let ours = Engine::new(ours_spec, workload).run();

    let tm = TimeModel::new(&ring_spec);
    let reprice = |base: &RunResult, name: &'static str, cost: socflow::timemodel::EpochCost| {
        let n = base.epoch_accuracy.len();
        RunResult {
            method: name.to_string(),
            epoch_accuracy: base.epoch_accuracy.clone(),
            epoch_time: vec![cost.time; n],
            breakdown: {
                let mut b = socflow::report::Breakdown::default();
                for _ in 0..n {
                    b.add(&cost.breakdown);
                }
                b
            },
            energy_joules: cost.energy * n as f64,
            alpha_trace: vec![f32::NAN; n],
            recovery_time: 0.0,
        }
    };

    vec![
        MethodRun {
            name: "PS",
            result: reprice(
                &ring,
                "PS",
                tm.sync_epoch(SyncCollective::Ps, 1.0, 0.0, None),
            ),
        },
        MethodRun {
            name: "RING",
            result: ring.clone(),
        },
        MethodRun {
            name: "HiPress",
            result: reprice(
                &ring,
                "HiPress",
                tm.sync_epoch(
                    SyncCollective::Ring,
                    calibration::DGC_WIRE_FRACTION,
                    calibration::DGC_OVERHEAD_FLOPS_PER_PARAM,
                    None,
                ),
            ),
        },
        MethodRun {
            name: "2D-Paral",
            result: reprice(
                &ring,
                "2D-Paral",
                tm.sync_epoch(SyncCollective::Ring, 1.0, 0.0, Some(4)),
            ),
        },
        MethodRun {
            name: "FedAvg",
            result: fed.clone(),
        },
        MethodRun {
            name: "T-FedAvg",
            result: reprice(&fed, "T-FedAvg", tm.federated_epoch(Some(2))),
        },
        MethodRun {
            name: "Ours",
            result: ours,
        },
    ]
}

/// Runs one job with an in-memory telemetry sink attached and returns the
/// result together with the recorded event stream — the bench-side hook for
/// asserting on sync-time fractions, α trajectories or per-transfer network
/// behaviour without re-deriving them from [`RunResult`].
pub fn run_traced(spec: TrainJobSpec, workload: Workload) -> (RunResult, Vec<Event>) {
    let sink = Arc::new(MemorySink::new());
    let mut engine = Engine::new(spec, workload).with_sink(sink.clone());
    let result = engine.run();
    (result, sink.take())
}

/// Fraction of visible epoch time spent synchronizing, computed from a
/// recorded event stream (Fig. 12's y-axis).
pub fn sync_fraction(events: &[Event]) -> f64 {
    Summary::from_events(events).sync_fraction()
}

/// Seconds → hours.
pub fn hours(secs: f64) -> f64 {
    secs / 3600.0
}

/// Prints an aligned table: header row then data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats an optional time in hours ("x" when the run never converged,
/// as the paper marks non-converging baselines).
pub fn fmt_hours(t: Option<f64>) -> String {
    match t {
        Some(s) => format!("{:.2}", hours(s)),
        None => "x".to_string(),
    }
}

/// Trains `model` on `train` for `epochs` epochs at the given NPU format
/// (`None` = FP32) and returns the best test accuracy — the primitive of
/// the §5 format-sweep extension experiment.
pub fn train_with_format(
    model: socflow_nn::models::ModelKind,
    cfg: socflow_nn::models::ModelConfig,
    train: &socflow_data::Dataset,
    test: &socflow_data::Dataset,
    format: Option<socflow_tensor::quant::QuantFormat>,
    epochs: usize,
    rng: &mut rand::rngs::StdRng,
) -> f32 {
    use socflow_nn::{loss, metrics, optim::Sgd, Mode, Precision};
    let precision = match format {
        None => Precision::Fp32,
        Some(f) => Precision::Quant(f),
    };
    let mut net = model.build(cfg, rng);
    let mut opt = Sgd::new(0.05, 0.9, 5e-4);
    let mut best = 0.0f32;
    for epoch in 0..epochs {
        for batch in train.epoch_batches(64, rng) {
            let mode = Mode::train(precision);
            let logits = net.forward(&batch.images, mode);
            let (_, grad) = loss::softmax_cross_entropy(&logits, &batch.labels);
            net.backward(&grad, mode);
            opt.step(&mut net);
            net.zero_grad();
        }
        opt.set_lr((opt.lr() * 0.9).max(0.01));
        let eval = test.head_batch(512);
        let logits = net.forward(&eval.images, Mode::eval(precision));
        best = best.max(metrics::accuracy(&logits, &eval.labels));
        let _ = epoch;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_workloads_in_table3_order() {
        let w = paper_workloads();
        assert_eq!(w.len(), 8);
        assert_eq!(w[0].name, "MobileNet");
        assert_eq!(w[0].batch, 256, "paper: MobileNet uses batch 256");
        assert!(w[1..].iter().all(|d| d.batch == 64));
        assert!(w[7].transfer);
    }

    #[test]
    fn comparison_produces_seven_methods() {
        std::env::set_var("SOCFLOW_EPOCHS", "2");
        std::env::set_var("SOCFLOW_SAMPLES", "256");
        let defs = paper_workloads();
        let lenet = defs.iter().find(|d| d.name == "LeNet5-FMNIST").unwrap();
        let runs = run_comparison(lenet, 8, 2, 4);
        assert_eq!(runs.len(), 7);
        let names: Vec<&str> = runs.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec!["PS", "RING", "HiPress", "2D-Paral", "FedAvg", "T-FedAvg", "Ours"]
        );
        // sync methods share RING's accuracy
        assert_eq!(runs[0].result.epoch_accuracy, runs[1].result.epoch_accuracy);
        assert_eq!(runs[2].result.epoch_accuracy, runs[1].result.epoch_accuracy);
        // but not its timing
        assert_ne!(runs[0].result.total_time(), runs[1].result.total_time());
    }

    #[test]
    fn traced_run_reproduces_breakdown() {
        let defs = paper_workloads();
        let lenet = defs.iter().find(|d| d.name == "LeNet5-FMNIST").unwrap();
        let cfg = SocFlowConfig {
            accuracy_streams: Some(2),
            ..SocFlowConfig::with_groups(2)
        };
        let spec = build_spec(lenet, MethodSpec::SocFlow(cfg), 8, 2);
        let workload = Workload::standard(&spec, 256, INPUT_SIZE, lenet.width);
        let (result, events) = run_traced(spec, workload);
        assert!(!events.is_empty());
        // the trace alone must reproduce the run's Breakdown exactly
        let summary = Summary::from_events(&events);
        assert!((summary.compute - result.breakdown.compute).abs() < 1e-6);
        assert!((summary.sync - result.breakdown.sync).abs() < 1e-6);
        assert!((summary.update - result.breakdown.update).abs() < 1e-6);
        assert!((summary.total_time - result.total_time()).abs() < 1e-6);
        assert!((summary.energy - result.energy_joules).abs() < 1e-6);
        let f = sync_fraction(&events);
        assert!(f > 0.0 && f < 1.0);
        // network events rode along in the same stream
        assert!(events.iter().any(|e| matches!(e, Event::Transfer { .. })));
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(fmt_hours(None), "x");
        assert_eq!(fmt_hours(Some(7200.0)), "2.00");
    }
}
