//! Extension experiment: the paper's second implementation optimization —
//! underclocking-aware workload re-balancing (§4.1). When DVFS throttles
//! some SoCs (thermal pressure from neighbouring user workloads), a group
//! that splits its batch equally stalls on the slowest SoC; re-balancing
//! shares proportionally to each SoC's current clock.
//!
//! This bench sweeps the number of throttled SoCs per group and their
//! severity, reporting equal-share vs re-balanced per-batch compute time.

use socflow::config::{MethodSpec, SocFlowConfig};
use socflow::timemodel::TimeModel;
use socflow_bench::{build_spec, paper_workloads, print_table};
use socflow_cluster::SocId;

fn main() {
    let defs = paper_workloads();
    let def = defs.iter().find(|d| d.name == "VGG11").unwrap();
    let spec = build_spec(
        def,
        MethodSpec::SocFlow(SocFlowConfig::with_groups(8)),
        32,
        1,
    );
    let group: Vec<SocId> = (0..4).map(SocId).collect();

    let mut rows = Vec::new();
    for (throttled, factor) in [
        (0usize, 1.0f64),
        (1, 0.7),
        (1, 0.5),
        (2, 0.5),
        (3, 0.5),
        (1, 0.3),
    ] {
        let mut tm = TimeModel::new(&spec);
        for s in 0..throttled {
            tm.compute_mut().set_underclock(s, factor);
        }
        let equal = tm.equal_share_compute_time(&group);
        let balanced = tm.rebalanced_compute_time(&group);
        rows.push(vec![
            format!("{throttled} @ {:.0}%", factor * 100.0),
            format!("{:.0}", equal * 1000.0),
            format!("{:.0}", balanced * 1000.0),
            format!("{:.2}x", equal / balanced),
        ]);
    }
    print_table(
        "Extension: underclocking-aware re-balancing — VGG-11, 4-SoC group, batch 64",
        &["throttled SoCs", "equal-share ms", "re-balanced ms", "gain"],
        &rows,
    );
    println!("\npaper §4.1 lists this re-balancing as one of SoCFlow's two key optimizations");
}
