//! Figure 14: ablation of the mixed-precision data-parallel training
//! algorithm — accuracy-vs-time curves over the first epochs for
//! Ours-FP32, Ours-Mixed (full α/β controller), Ours-Half (fixed α = 0.7)
//! and Ours-INT8, on VGG-11 and ResNet-18.
//!
//! Paper shape: Ours-Mixed reaches INT8-like speed early (most data on
//! the NPU while α is high) and FP32-like final accuracy (data shifts to
//! the CPU as α decays); Ours-Half is dominated on both axes.

use socflow::config::{MethodSpec, SocFlowConfig};
use socflow::engine::{Engine, Workload};
use socflow_bench::{build_spec, paper_workloads, print_table, samples};

fn main() {
    let n_epochs = 10; // the paper plots the first 10 epochs
    let defs = paper_workloads();
    for name in ["VGG11", "ResNet18"] {
        let def = defs.iter().find(|d| d.name == name).unwrap();
        let cfg = SocFlowConfig::with_groups(8);
        let fp32_cfg = SocFlowConfig {
            mixed_precision: false,
            ..cfg
        };
        let arms: Vec<(&str, MethodSpec)> = vec![
            ("Ours-FP32", MethodSpec::SocFlow(fp32_cfg)),
            ("Ours-Mixed", MethodSpec::SocFlow(cfg)),
            ("Ours-Half", MethodSpec::SocFlowHalf(cfg)),
            ("Ours-INT8", MethodSpec::SocFlowInt8(cfg)),
        ];
        let mut rows = Vec::new();
        for (label, method) in arms {
            let spec = build_spec(def, method, 32, n_epochs);
            let workload =
                Workload::standard(&spec, samples(), socflow_bench::INPUT_SIZE, def.width);
            let r = Engine::new(spec, workload).run();
            // cumulative (time h, accuracy %) pairs per epoch
            let mut t = 0.0;
            let curve: Vec<String> = r
                .epoch_accuracy
                .iter()
                .zip(&r.epoch_time)
                .map(|(a, dt)| {
                    t += dt;
                    format!("({:.2}h {:.0}%)", t / 3600.0, a * 100.0)
                })
                .collect();
            rows.push(vec![label.to_string(), curve.join(" ")]);
        }
        print_table(
            &format!("Figure 14: accuracy-vs-time curves, first {n_epochs} epochs — {name}"),
            &["arm", "curve"],
            &rows,
        );
    }
    println!("\npaper: Ours-Mixed ≈ Ours-INT8 in speed and ≈ Ours-FP32 in final accuracy;");
    println!("       Ours-Half is slower than INT8 and less accurate than FP32.");
}
