//! Figure 13: ablation of SoCFlow's techniques on VGG-11 and ResNet-18.
//!
//! Five arms, each adding one technique (right-to-left in the paper's
//! bars): RING → +Group (group-wise parallelism with delayed aggregation,
//! naive sequential mapping, no planning) → +Mapping (integrity-greedy)
//! → +Plan (CG planning/overlap) → +Mixed (data-parallel mixed precision).
//!
//! Paper gains: Group 8–57 %, Mapping 1.05–1.10×, Plan 1.69–1.78×,
//! Mixed 3.53–5.78×.

use socflow::config::{MappingMode, MethodSpec, SocFlowConfig};
use socflow::engine::{Engine, Workload};
use socflow_bench::{build_spec, epochs, hours, paper_workloads, print_table, samples};

fn main() {
    let n_epochs = epochs();
    let defs = paper_workloads();
    for name in ["VGG11", "ResNet18"] {
        let def = defs.iter().find(|d| d.name == name).unwrap();
        let arms: Vec<(&str, MethodSpec)> = vec![
            ("RING", MethodSpec::Ring),
            (
                "+Group",
                MethodSpec::SocFlow(SocFlowConfig {
                    groups: Some(8),
                    mapping: MappingMode::Sequential,
                    planning: false,
                    mixed_precision: false,
                    accuracy_streams: Some(4),
                }),
            ),
            (
                "+Mapping",
                MethodSpec::SocFlow(SocFlowConfig {
                    groups: Some(8),
                    mapping: MappingMode::IntegrityGreedy,
                    planning: false,
                    mixed_precision: false,
                    accuracy_streams: Some(4),
                }),
            ),
            (
                "+Plan",
                MethodSpec::SocFlow(SocFlowConfig {
                    groups: Some(8),
                    mapping: MappingMode::IntegrityGreedy,
                    planning: true,
                    mixed_precision: false,
                    accuracy_streams: Some(4),
                }),
            ),
            (
                "+Mixed",
                MethodSpec::SocFlow(SocFlowConfig {
                    groups: Some(8),
                    mapping: MappingMode::IntegrityGreedy,
                    planning: true,
                    mixed_precision: true,
                    accuracy_streams: Some(4),
                }),
            ),
        ];
        let mut rows = Vec::new();
        let mut prev: Option<f64> = None;
        for (label, method) in arms {
            let spec = build_spec(def, method, 32, n_epochs);
            let workload =
                Workload::standard(&spec, samples(), socflow_bench::INPUT_SIZE, def.width);
            let r = Engine::new(spec, workload).run();
            let t = r.total_time();
            let gain = prev.map(|p| format!("{:.2}x", p / t)).unwrap_or_default();
            prev = Some(t);
            rows.push(vec![
                label.to_string(),
                format!("{:.2}", hours(t)),
                gain,
                format!("{:.1}", r.best_accuracy() * 100.0),
            ]);
        }
        print_table(
            &format!("Figure 13: technique ablation — {name} ({n_epochs} epochs, 32 SoCs)"),
            &["arm", "time h", "gain vs prev", "acc %"],
            &rows,
        );
    }
    println!(
        "\npaper step gains: Group 8–57%, Mapping 1.05–1.10x, Plan 1.69–1.78x, Mixed 3.53–5.78x"
    );
}
