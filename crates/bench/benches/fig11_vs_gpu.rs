//! Figure 11: 60-SoC SoCFlow vs traditional datacenter GPUs.
//!
//! (a,c) Snapdragon 865 cluster vs NVIDIA V100; (b,d) Snapdragon 8gen1
//! cluster vs NVIDIA A100 — training time and energy for VGG-11,
//! ResNet-18, LeNet (EMNIST) and LeNet (FMNIST).
//!
//! Paper: comparable speed (0.80–2.79× vs V100) at 2.31×–10.23× less
//! energy. The 60-SoC runs use a per-group batch of 256 (12 whole-board
//! groups), which is what lets the intra-group ring amortize across the
//! larger batch.

use socflow::config::{MethodSpec, SocFlowConfig, TrainJobSpec};
use socflow::mapping::integrity_greedy;
use socflow::planning::divide_communication_groups;
use socflow::timemodel::TimeModel;
use socflow_bench::{build_spec, hours, paper_workloads, print_table};
use socflow_cluster::{ClusterSpec, Processor};

const EPOCHS: f64 = 200.0;

fn socflow_epoch_60(spec: &TrainJobSpec, gen1: bool) -> (f64, f64) {
    let tm = TimeModel::new(spec);
    let cluster = ClusterSpec::paper_server();
    let mapping = integrity_greedy(&cluster, 60, 12);
    let cgs = divide_communication_groups(&mapping).unwrap();
    let beta = tm.compute().beta();
    // steady-state controller split at α = 1 (early/mid training)
    let ctrl_cpu_frac = (-1.0f64).exp().max(1.0 - beta);
    let cost = tm.socflow_epoch(&mapping, &cgs, true, ctrl_cpu_frac);
    // 8gen1 silicon: CPU 1.6x, NPU 4x faster than the 865 — compute-bound
    // portions shrink ~3x; sync is unchanged. Approximate with a 2.5x
    // epoch-time scale (compute dominates these workloads' iterations).
    let scale = if gen1 { 1.0 / 2.5 } else { 1.0 };
    (cost.time * EPOCHS * scale, cost.energy * EPOCHS * scale)
}

fn main() {
    let defs = paper_workloads();
    let names = ["VGG11", "ResNet18", "LeNet5-EMNIST", "LeNet5-FMNIST"];

    for (gen1, gpu, gpu_name) in [
        (false, Processor::GpuV100, "V100"),
        (true, Processor::GpuA100, "A100"),
    ] {
        let soc_name = if gen1 { "8gen1x60" } else { "865x60" };
        let mut rows = Vec::new();
        for name in names {
            let def = defs.iter().find(|d| d.name == name).unwrap();
            let mut spec = build_spec(
                def,
                MethodSpec::SocFlow(SocFlowConfig::with_groups(12)),
                60,
                1,
            );
            spec.global_batch = 256;
            let (ours_t, ours_e) = socflow_epoch_60(&spec, gen1);
            let tm = TimeModel::new(&spec);
            let g = tm.gpu_epoch(gpu);
            let (gpu_t, gpu_e) = (g.time * EPOCHS, g.energy * EPOCHS);
            rows.push(vec![
                def.name.to_string(),
                format!("{:.2}", hours(ours_t)),
                format!("{:.2}", hours(gpu_t)),
                format!("{:.2}x", gpu_t / ours_t),
                format!("{:.0}", ours_e / 1e3),
                format!("{:.0}", gpu_e / 1e3),
                format!("{:.2}x", gpu_e / ours_e),
            ]);
        }
        print_table(
            &format!("Figure 11: SoCFlow ({soc_name}) vs {gpu_name} — time (h) and energy (kJ)"),
            &[
                "model",
                "ours h",
                "gpu h",
                "speedup",
                "ours kJ",
                "gpu kJ",
                "energy saving",
            ],
            &rows,
        );
    }
    println!("\npaper: speedup 0.80–2.79x vs V100; energy saving 2.31x, 2.81x, 2.96x, 10.23x");
}
