//! Figures 8 + 9: end-to-end training time and energy to convergence for
//! the seven methods on all eight workloads (32 SoCs).
//!
//! Convergence target: 99 % of the method's own best accuracy (the
//! paper's relative-convergence criterion); time and energy are reported
//! at the first epoch crossing the target. The dashed "Idle time" line of
//! Fig. 8 is the ≈4 h daily idle window — in the paper only SoCFlow
//! finishes inside it.

use socflow::report::REFERENCE_CONVERGENCE_SCALE;
use socflow_bench::{epochs, fmt_hours, paper_workloads, print_table, run_comparison};
use socflow_cluster::tidal::DAILY_IDLE_WINDOW;

fn main() {
    let socs = 32;
    let n_epochs = epochs();
    let mut time_rows = Vec::new();
    let mut energy_rows = Vec::new();

    for def in paper_workloads() {
        let runs = run_comparison(&def, socs, n_epochs, 8);
        // common convergence target: 99% of the best sync accuracy
        let target = runs
            .iter()
            .map(|r| r.result.best_accuracy())
            .fold(0.0f32, f32::max)
            * 0.95;
        let mut t_row = vec![def.name.to_string()];
        let mut e_row = vec![def.name.to_string()];
        for r in &runs {
            let t = r.result.time_to_accuracy(target);
            let e = r.result.energy_to_accuracy(target);
            t_row.push(fmt_hours(t));
            e_row.push(match e {
                Some(j) => format!("{:.0}", j / 1e3),
                None => "x".into(),
            });
        }
        // does Ours fit the idle window? (absolute claim: project the
        // scaled epoch count back to a reference 200-epoch schedule)
        let ours = runs.last().unwrap();
        let fits = ours
            .result
            .time_to_accuracy(target)
            .map(|t| t * REFERENCE_CONVERGENCE_SCALE <= DAILY_IDLE_WINDOW)
            .unwrap_or(false);
        t_row.push(if fits { "yes".into() } else { "no".into() });
        time_rows.push(t_row);
        energy_rows.push(e_row);
    }

    print_table(
        "Figure 8: time to convergence (hours, 32 SoCs; target = 95% of best accuracy)",
        &[
            "workload",
            "PS",
            "RING",
            "HiPress",
            "2D-Paral",
            "FedAvg",
            "T-FedAvg",
            "Ours",
            "fits 4h idle?",
        ],
        &time_rows,
    );
    print_table(
        "Figure 9: energy to convergence (kJ, 32 SoCs)",
        &[
            "workload", "PS", "RING", "HiPress", "2D-Paral", "FedAvg", "T-FedAvg", "Ours",
        ],
        &energy_rows,
    );
    println!("\npaper: Ours speedup 94.4–740.7x vs PS, 14.8–143.7x vs RING, 7.4–98.2x vs HiPress,");
    println!("       4.4–50.4x vs 2D-Paral; energy 20–158x vs PS … 1.7–11x vs T-FedAvg;");
    println!("       only Ours finishes inside the ~4 h idle window.");
}
