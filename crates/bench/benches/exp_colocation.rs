//! Extension experiment: co-location with live user traffic (paper Fig. 1
//! shows SoC-level harvesting *interleaved* with user workloads; the paper
//! evaluates only the idle window). Here the cluster's links carry a
//! background fraction of cloud-gaming traffic, and we measure how each
//! method's epoch time degrades.
//!
//! Expected shape: SoCFlow degrades gracefully (its per-batch traffic is
//! intra-board and small) while RING, whose every iteration crosses the
//! shared NICs 62 times, collapses first — quantifying why harvesting
//! works beyond the dead of night.

use socflow::config::{MethodSpec, SocFlowConfig, TrainJobSpec};
use socflow::mapping::integrity_greedy;
use socflow::planning::divide_communication_groups;
use socflow::timemodel::TimeModel;
use socflow_bench::{build_spec, paper_workloads, print_table};
use socflow_cluster::tidal::HOURLY_BUSY_FRACTION;
use socflow_cluster::ClusterSpec;
use socflow_collectives::{Collective, RingAllReduce};

fn main() {
    let defs = paper_workloads();
    let def = defs.iter().find(|d| d.name == "VGG11").unwrap();
    let spec: TrainJobSpec = build_spec(
        def,
        MethodSpec::SocFlow(SocFlowConfig::with_groups(8)),
        32,
        1,
    );
    let cluster = ClusterSpec::for_socs(32);
    let mapping = integrity_greedy(&cluster, 32, 8);
    let cgs = divide_communication_groups(&mapping).unwrap();

    let mut rows = Vec::new();
    let mut base_ours = None;
    let mut base_ring = None;
    for load_pct in [0usize, 20, 40, 60, 80] {
        let load = load_pct as f64 / 100.0;
        let mut tm = TimeModel::new(&spec);
        *tm.net_mut() = tm.net().clone().with_background_load(load);
        let ours = tm.socflow_epoch(&mapping, &cgs, true, 0.37);
        let all: Vec<_> = (0..32).map(socflow_cluster::SocId).collect();
        let iters = (tm.ref_samples() as f64 / 64.0).ceil();
        let ring_sync = RingAllReduce.time(tm.net(), &all, def.model.payload_bytes_fp32() as f64);
        let ring_epoch = iters * ring_sync.max(64.0 / 32.0 * 0.0105);
        let b_ours = *base_ours.get_or_insert(ours.time);
        let b_ring = *base_ring.get_or_insert(ring_epoch);
        rows.push(vec![
            format!("{load_pct}%"),
            format!("{:.1}", ours.time / 60.0),
            format!("{:.2}x", ours.time / b_ours),
            format!("{:.1}", ring_epoch / 60.0),
            format!("{:.2}x", ring_epoch / b_ring),
        ]);
    }
    print_table(
        "Extension: epoch time under co-located user traffic — VGG-11, 32 SoCs",
        &[
            "bg load",
            "Ours min/epoch",
            "slowdown",
            "RING min/epoch",
            "slowdown",
        ],
        &rows,
    );
    // which hours of the tidal day keep SoCFlow within 1.5x of its best?
    let tolerable: Vec<usize> = (0..24)
        .filter(|&h| HOURLY_BUSY_FRACTION[h] <= 0.4)
        .collect();
    println!(
        "\nhours with <=40% user load (training viable beyond the idle trough): {:?}",
        tolerable
    );
}
