//! Extension experiment: the (group count × batch size × model) design
//! space of group-wise parallelism, mapped with the calibrated time model
//! (no training — pure simulation, so the whole space is cheap).
//!
//! Answers the planner's questions quantitatively:
//! - intra-board group sizes (≤5 SoCs) dominate: split groups pay the NIC;
//! - larger per-group batches amortize the per-iteration ring;
//! - the best (N, BS_g) shifts with the model's payload-to-compute ratio —
//!   LeNet wants many small groups, ResNet-18 wants fewer, larger batches.

use socflow::config::{MethodSpec, SocFlowConfig, TrainJobSpec};
use socflow::mapping::integrity_greedy;
use socflow::planning::divide_communication_groups;
use socflow::timemodel::TimeModel;
use socflow_bench::{paper_workloads, print_table};
use socflow_cluster::ClusterSpec;

fn main() {
    let socs = 32;
    let cluster = ClusterSpec::for_socs(socs);
    let defs = paper_workloads();
    for name in ["LeNet5-FMNIST", "VGG11", "ResNet18"] {
        let def = defs.iter().find(|d| d.name == name).unwrap();
        let mut rows = Vec::new();
        let mut best: Option<(f64, usize, usize)> = None;
        for groups in [2usize, 4, 8, 16] {
            let mut row = vec![format!("{groups} groups")];
            for batch in [32usize, 64, 128, 256] {
                let mut spec: TrainJobSpec = socflow_bench::build_spec(
                    def,
                    MethodSpec::SocFlow(SocFlowConfig::with_groups(groups)),
                    socs,
                    1,
                );
                spec.global_batch = batch;
                let tm = TimeModel::new(&spec);
                let mapping = integrity_greedy(&cluster, socs, groups);
                let cgs = divide_communication_groups(&mapping).unwrap();
                let cost = tm.socflow_epoch(&mapping, &cgs, true, 0.37);
                row.push(format!("{:.0}", cost.time));
                if best.is_none_or(|(t, _, _)| cost.time < t) {
                    best = Some((cost.time, groups, batch));
                }
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Extension: epoch time (s) across the (groups × batch) space — {name}, 32 SoCs"
            ),
            &["", "BS=32", "BS=64", "BS=128", "BS=256"],
            &rows,
        );
        if let Some((t, g, b)) = best {
            println!("fastest point: {g} groups × batch {b} → {t:.0} s/epoch");
        }
    }
    println!("\n(no paper counterpart — the paper fixes BS_g = 64 and picks N by heuristic)");
}
