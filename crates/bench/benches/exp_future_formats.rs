//! Extension experiment (paper §5, "future applicability of SoCFlow"):
//! newer mobile NPUs (Snapdragon 8gen1/8gen2) support INT4/INT8/INT16/FP16
//! concurrently. This bench trains the same workload under each NPU
//! format — including the §5 Transformer case — and reports converged
//! accuracy alongside the per-format synchronization payload.
//!
//! Expected shape: accuracy improves monotonically with format fidelity
//! (INT4 ≪ INT8 < INT16 ≈ FP16 ≈ FP32) while the wire payload grows, so
//! INT8 remains the sweet spot the paper builds on — and FP16 unlocks the
//! Transformer, which INT4 visibly degrades.

use rand::rngs::StdRng;
use rand::SeedableRng;
use socflow_bench::{print_table, train_with_format};
use socflow_data::{Dataset, DatasetPreset};
use socflow_nn::models::{ModelConfig, ModelKind};
use socflow_tensor::quant::QuantFormat;

fn main() {
    let samples = std::cmp::min(socflow_bench::samples(), 2048);
    let epochs = std::cmp::min(socflow_bench::epochs(), 12);
    for (model, preset, width) in [
        (ModelKind::LeNet5, DatasetPreset::FashionMnist, 0.5f32),
        (ModelKind::TinyViT, DatasetPreset::Cifar10, 0.5),
    ] {
        let spec = preset.synthetic_spec(samples + 512, 8, 42);
        let all = Dataset::synthetic(spec);
        let train = all.subset(&(0..samples).collect::<Vec<_>>());
        let test = all.subset(&(samples..samples + 512).collect::<Vec<_>>());
        let cfg = ModelConfig::new(train.channels(), 8, train.classes(), width);

        let mut rows = Vec::new();
        let payload = model.payload_bytes_fp32() as f64;
        // FP32 reference first
        let mut rng = StdRng::seed_from_u64(7);
        let fp32_acc = train_with_format(model, cfg, &train, &test, None, epochs, &mut rng);
        rows.push(vec![
            "FP32 (CPU)".to_string(),
            format!("{:.1}", fp32_acc * 100.0),
            format!("{:.1}", payload / 1e6),
        ]);
        for format in [
            QuantFormat::Int4,
            QuantFormat::Int8,
            QuantFormat::Int16,
            QuantFormat::Fp16,
        ] {
            let mut rng = StdRng::seed_from_u64(7);
            let acc = train_with_format(model, cfg, &train, &test, Some(format), epochs, &mut rng);
            rows.push(vec![
                format.to_string(),
                format!("{:.1}", acc * 100.0),
                format!("{:.1}", payload * format.wire_bytes() / 4.0 / 1e6),
            ]);
        }
        print_table(
            &format!("Extension: NPU format sweep — {model} ({epochs} epochs, {samples} samples)"),
            &["format", "accuracy %", "sync payload MB"],
            &rows,
        );
    }
    println!(
        "\npaper §5: INT4/INT8/INT16/FP16 NPUs open SoCFlow to larger DNNs incl. Transformers"
    );
}
