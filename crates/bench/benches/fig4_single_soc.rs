//! Figure 4: the motivation measurements.
//!
//! (a) End-to-end single-SoC training time (CPU-FP32 vs NPU-INT8) for
//!     VGG-11 and ResNet-18 on CIFAR-10 — paper: 29.1 h / ~10 h and
//!     233 h / 36 h at 200 epochs.
//! (b) Ring-AllReduce and parameter-server gradient-communication latency
//!     vs SoC count (4–32) — paper anchors: intra-PCB ring 540 / 699 ms,
//!     PS 2060 / 2700 ms; 32-SoC inter-PCB 2.31–9.81× slower.
//! (c) Convergence accuracy of FP32 vs INT8 training (32 SoCs) — paper:
//!     INT8 loses 5.94 % (VGG-11) and 8.25 % (ResNet-18).

use socflow::config::{MethodSpec, SocFlowConfig};
use socflow::engine::{Engine, Workload};
use socflow::timemodel::TimeModel;
use socflow_bench::{build_spec, hours, paper_workloads, print_table};
use socflow_cluster::{ClusterNet, ClusterSpec, Processor, SocId};
use socflow_collectives::{Collective, ParameterServer, RingAllReduce};
use socflow_nn::models::ModelKind;

const EPOCHS_TO_CONVERGE: f64 = 200.0;

fn fig4a() {
    let defs = paper_workloads();
    let mut rows = Vec::new();
    for name in ["VGG11", "ResNet18"] {
        let def = defs.iter().find(|d| d.name == name).unwrap();
        let spec = build_spec(def, MethodSpec::Local, 1, 1);
        let tm = TimeModel::new(&spec);
        let cpu = tm.local_epoch(Processor::SocCpuFp32).time * EPOCHS_TO_CONVERGE;
        let npu = tm.local_epoch(Processor::SocNpuInt8).time * EPOCHS_TO_CONVERGE;
        rows.push(vec![
            def.name.to_string(),
            format!("{:.1}", hours(cpu)),
            format!("{:.1}", hours(npu)),
        ]);
    }
    print_table(
        "Figure 4(a): single-SoC end-to-end training time (hours, 200 epochs)",
        &["model", "CPU-FP32", "NPU-INT8"],
        &rows,
    );
    println!("paper: VGG-11 29.1h CPU / ~10h NPU; ResNet-18 233h CPU / 36h NPU");
}

fn fig4b() {
    let net = ClusterNet::new(ClusterSpec::paper_server());
    let payloads = [
        ("V11", ModelKind::Vgg11.payload_bytes_fp32() as f64),
        ("R18", ModelKind::ResNet18.payload_bytes_fp32() as f64),
    ];
    let mut rows = Vec::new();
    for socs in [4usize, 8, 12, 16, 20, 24, 28, 32] {
        let members: Vec<SocId> = (0..socs).map(SocId).collect();
        let mut row = vec![socs.to_string()];
        for (_, payload) in payloads {
            let t = RingAllReduce.time(&net, &members, payload);
            row.push(format!("{:.0}", t * 1000.0));
        }
        for (_, payload) in payloads {
            let t = ParameterServer::default().time(&net, &members, payload);
            row.push(format!("{:.0}", t * 1000.0));
        }
        rows.push(row);
    }
    print_table(
        "Figure 4(b): gradient-communication latency (ms) vs SoC count",
        &["SoCs", "V11-ring", "R18-ring", "V11-PS", "R18-PS"],
        &rows,
    );
    println!("paper anchors: intra-PCB ring 540/699 ms, PS 2060/2700 ms;");
    println!("              32-SoC inter-PCB: 1248, 2225, 20593, 26505 ms");
}

fn fig4c() {
    let defs = paper_workloads();
    let mut rows = Vec::new();
    let epochs = socflow_bench::epochs();
    for name in ["VGG11", "ResNet18"] {
        let def = defs.iter().find(|d| d.name == name).unwrap();
        let fp_spec = build_spec(def, MethodSpec::Ring, 32, epochs);
        let workload = Workload::standard(&fp_spec, socflow_bench::samples(), 8, def.width);
        // FP32 reference: the pure synchronous FP32 stream (Ring)
        let fp_run = Engine::new(fp_spec, workload.clone()).run();
        let int8_run = Engine::new(
            build_spec(
                def,
                MethodSpec::SocFlowInt8(SocFlowConfig::with_groups(8)),
                32,
                epochs,
            ),
            workload,
        )
        .run();
        rows.push(vec![
            def.name.to_string(),
            format!("{:.1}", fp_run.best_accuracy() * 100.0),
            format!("{:.1}", int8_run.best_accuracy() * 100.0),
            format!(
                "{:.1}",
                (fp_run.best_accuracy() - int8_run.best_accuracy()) * 100.0
            ),
        ]);
    }
    print_table(
        "Figure 4(c): convergence accuracy (%), FP32 vs INT8 at 32 SoCs",
        &["model", "CPU-FP32", "NPU-INT8", "gap"],
        &rows,
    );
    println!("paper gaps: VGG-11 5.94 %, ResNet-18 8.25 %");
}

fn main() {
    fig4a();
    fig4b();
    fig4c();
}
