//! Table 3: end-to-end convergence accuracy — 8 workloads × {Local, PS,
//! RING, 2D-Paral, HiPress, FedAvg, T-FedAvg, Ours}.
//!
//! Paper shape: the synchronous baselines match Local (avg −0.16 %); the
//! federated baselines degrade (avg −2.23 %); SoCFlow sits between
//! (avg −0.81 %) because its mixed-precision INT8 share costs a little
//! accuracy while delayed aggregation + shuffling costs almost none.

use socflow::config::MethodSpec;
use socflow::engine::Engine;
use socflow_bench::{
    build_spec, build_workload, epochs, paper_workloads, print_table, run_comparison,
};

fn main() {
    let socs = 32;
    let n_epochs = epochs();
    let mut rows = Vec::new();
    let mut sums = [0.0f32; 7];
    let mut counts = vec![0usize; 7];

    for def in paper_workloads() {
        // Local reference
        let local_spec = build_spec(&def, MethodSpec::Local, 1, n_epochs);
        let workload = build_workload(&local_spec, &def);
        let local = Engine::new(local_spec, workload).run();
        let local_acc = local.best_accuracy() * 100.0;

        let runs = run_comparison(&def, socs, n_epochs, 8);
        let mut row = vec![def.name.to_string(), format!("{local_acc:.1}")];
        for (i, r) in runs.iter().enumerate() {
            let acc = r.result.best_accuracy() * 100.0;
            let degradation = acc - local_acc;
            row.push(format!("{acc:.1} ({degradation:+.1})"));
            sums[i] += degradation;
            counts[i] += 1;
        }
        rows.push(row);
    }
    let mut avg_row = vec!["Avg degradation".to_string(), String::new()];
    for (s, c) in sums.iter().zip(&counts) {
        avg_row.push(format!("{:+.2}", s / *c as f32));
    }
    rows.push(avg_row);

    print_table(
        "Table 3: convergence accuracy (%) and degradation vs Local",
        &[
            "workload", "Local", "PS", "RING", "HiPress", "2D-Paral", "FedAvg", "T-FedAvg", "Ours",
        ],
        &rows,
    );
    println!("\npaper averages: sync methods −0.16, FedAvg/T-FedAvg −2.23, Ours −0.81");
}
