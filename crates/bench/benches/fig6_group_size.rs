//! Figure 6: converged accuracy and first-epoch accuracy vs logical-group
//! count (1, 2, 4, 8, 16, 32) for VGG-11 and ResNet-18.
//!
//! The paper's observation: first-epoch accuracy mirrors convergence
//! accuracy, and both collapse beyond a model-dependent group count — the
//! basis of the group-size heuristic (it picked 4 and 8 in the paper).

use socflow::config::{MethodSpec, SocFlowConfig};
use socflow::engine::{Engine, Workload};
use socflow::grouping::choose_group_count;
use socflow_bench::{build_spec, paper_workloads, print_table, samples};

fn main() {
    let defs = paper_workloads();
    let epochs = socflow_bench::epochs();
    for name in ["VGG11", "ResNet18"] {
        let def = defs.iter().find(|d| d.name == name).unwrap();
        let mut rows = Vec::new();
        let mut profile = Vec::new();
        for groups in [1usize, 2, 4, 8, 16, 32] {
            let spec = build_spec(
                def,
                MethodSpec::SocFlow(SocFlowConfig {
                    groups: Some(groups),
                    mixed_precision: false,
                    ..SocFlowConfig::full()
                }),
                32,
                epochs,
            );
            let workload =
                Workload::standard(&spec, samples(), socflow_bench::INPUT_SIZE, def.width);
            let engine = Engine::new(spec, workload.clone());
            let first = engine.first_epoch_accuracy(groups);
            let run = Engine::new(spec, workload).run();
            profile.push((groups, first));
            rows.push(vec![
                groups.to_string(),
                format!("{:.1}", run.best_accuracy() * 100.0),
                format!("{:.1}", first * 100.0),
            ]);
        }
        print_table(
            &format!("Figure 6: accuracy vs group count — {name}"),
            &["groups", "final acc %", "first-epoch acc %"],
            &rows,
        );
        // what would the heuristic choose from this profile?
        let mut iter = profile.iter();
        let choice = choose_group_count(32, 0.15, 0.5, |_| iter.next().map(|p| p.1).unwrap_or(0.0));
        println!(
            "heuristic choice for {name}: {} groups (paper picked 4/8)",
            choice.groups
        );
    }
}
