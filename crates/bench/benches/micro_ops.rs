//! Criterion micro-benchmarks of the substrate kernels: matmul, conv2d,
//! INT8 quantization, the flow-network simulation, the integrity-greedy
//! mapper and the CG coloring.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use socflow::mapping::integrity_greedy;
use socflow::planning::divide_communication_groups;
use socflow_cluster::{ClusterNet, ClusterSpec, Flow, SocId};
use socflow_collectives::{Collective, RingAllReduce};
use socflow_tensor::conv::{conv2d, conv2d_scratch, ConvParams, ConvScratch};
use socflow_tensor::quant::{self, QuantFormat, QuantParams};
use socflow_tensor::{linalg, Shape, Tensor};

fn rand_tensor(shape: impl Into<Shape>, seed: u64) -> Tensor {
    let shape = shape.into();
    let mut state = seed;
    let data = (0..shape.len())
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(data, shape)
}

fn bench_matmul(c: &mut Criterion) {
    let a = rand_tensor([128, 128], 1);
    let b = rand_tensor([128, 128], 2);
    c.bench_function("matmul_128", |bench| {
        bench.iter(|| linalg::matmul(std::hint::black_box(&a), std::hint::black_box(&b)))
    });
    // transposed-operand GEMMs: the backward pass runs almost entirely on
    // these two, so they deserve their own baselines
    c.bench_function("matmul_at_b_128", |bench| {
        bench.iter(|| linalg::matmul_at_b(std::hint::black_box(&a), std::hint::black_box(&b)))
    });
    c.bench_function("matmul_a_bt_128", |bench| {
        bench.iter(|| linalg::matmul_a_bt(std::hint::black_box(&a), std::hint::black_box(&b)))
    });
    // preallocated-output path: isolates kernel time from allocation
    let mut out = Tensor::zeros([128, 128]);
    c.bench_function("matmul_128_into", |bench| {
        bench.iter(|| {
            linalg::matmul_into(std::hint::black_box(&a), std::hint::black_box(&b), &mut out)
        })
    });
    let t = rand_tensor([256, 256], 6);
    c.bench_function("transpose_256", |bench| {
        bench.iter(|| linalg::transpose(std::hint::black_box(&t)))
    });
}

fn bench_conv2d(c: &mut Criterion) {
    let x = rand_tensor([8, 16, 16, 16], 3);
    let w = rand_tensor([32, 16, 3, 3], 4);
    c.bench_function("conv2d_16x16x16_to_32", |bench| {
        bench.iter(|| {
            conv2d(
                std::hint::black_box(&x),
                std::hint::black_box(&w),
                ConvParams::new(1, 1),
            )
        })
    });
    // pooled-scratch path — what the conv layers actually run per batch
    let mut scratch = ConvScratch::default();
    let mut y = Tensor::default();
    c.bench_function("conv2d_16x16x16_to_32_pooled", |bench| {
        bench.iter(|| {
            conv2d_scratch(
                std::hint::black_box(&x),
                std::hint::black_box(&w),
                ConvParams::new(1, 1),
                &mut scratch,
                &mut y,
            )
        })
    });
}

fn bench_quantization(c: &mut Criterion) {
    let t = rand_tensor([65536], 5);
    let p = QuantParams::from_tensor(&t);
    c.bench_function("fake_quant_64k", |bench| {
        bench.iter(|| quant::fake_quant(std::hint::black_box(&t), p))
    });
    // fused quantize→dequantize into a pooled buffer (the layers' path)
    let mut out = Tensor::default();
    c.bench_function("fake_quant_64k_fused", |bench| {
        bench.iter(|| QuantFormat::Int8.fake_quant_into(std::hint::black_box(&t), &mut out))
    });
}

fn bench_flow_network(c: &mut Criterion) {
    let net = ClusterNet::new(ClusterSpec::paper_server());
    let flows: Vec<Flow> = (0..32)
        .map(|i| Flow::new(SocId(i), SocId((i + 1) % 32), 1e6))
        .collect();
    c.bench_function("maxmin_transfer_32_flows", |bench| {
        bench.iter(|| net.transfer(std::hint::black_box(&flows)))
    });
    let members: Vec<SocId> = (0..32).map(SocId).collect();
    c.bench_function("ring_allreduce_time_32", |bench| {
        bench.iter(|| RingAllReduce.time(&net, std::hint::black_box(&members), 36.9e6))
    });
}

fn bench_mapping_and_coloring(c: &mut Criterion) {
    let spec = ClusterSpec::paper_server();
    c.bench_function("integrity_greedy_60socs_9groups", |bench| {
        bench.iter(|| integrity_greedy(std::hint::black_box(&spec), 60, 9))
    });
    let mapping = integrity_greedy(&spec, 60, 9);
    c.bench_function("cg_coloring_60socs", |bench| {
        bench.iter_batched(
            || mapping.clone(),
            |m| divide_communication_groups(std::hint::black_box(&m)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_conv2d,
    bench_quantization,
    bench_flow_network,
    bench_mapping_and_coloring
);
criterion_main!(benches);
