//! Figure 12: visible training-time breakdown (Compute / Sync / Update)
//! for Ours, RING, HiPress, 2D-Paral and FedAvg on VGG-11 and ResNet-18
//! (CIFAR-10, 32 SoCs).
//!
//! Paper shape: RING's sync dominates (~81 % for VGG-11); HiPress and
//! 2D-Paral still sit at ~76.5 %/71.5 %; FedAvg drops to 16.5–34.7 %
//! thanks to per-epoch sync; SoCFlow lands in between (~46 %).

use socflow_bench::{epochs, paper_workloads, print_table, run_comparison};

fn main() {
    let n_epochs = epochs();
    let defs = paper_workloads();
    for name in ["VGG11", "ResNet18"] {
        let def = defs.iter().find(|d| d.name == name).unwrap();
        let runs = run_comparison(def, 32, n_epochs, 8);
        let mut rows = Vec::new();
        for r in &runs {
            if !["Ours", "RING", "HiPress", "2D-Paral", "FedAvg"].contains(&r.name) {
                continue;
            }
            let b = r.result.breakdown;
            let total = b.total().max(1e-9);
            rows.push(vec![
                r.name.to_string(),
                format!("{:.2}", b.compute / 3600.0),
                format!("{:.2}", b.sync / 3600.0),
                format!("{:.3}", b.update / 3600.0),
                format!("{:.0}%", b.compute / total * 100.0),
                format!("{:.0}%", b.sync / total * 100.0),
                format!("{:.0}%", b.update / total * 100.0),
            ]);
        }
        print_table(
            &format!("Figure 12: training-time breakdown — {name} (hours over {n_epochs} epochs)"),
            &[
                "method",
                "compute h",
                "sync h",
                "update h",
                "compute",
                "sync",
                "update",
            ],
            &rows,
        );
    }
    println!("\npaper sync shares: RING ~81%, HiPress ~76.5%, 2D-Paral ~71.5%, FedAvg 16.5–34.7%, Ours ~46%");
}
