//! Figure 3: busy-SoC fraction within a day on deployed SoC-Cluster
//! servers — the tidal phenomenon motivating cycle harvesting.
//!
//! Paper shape: the 11:00–17:00 peak is >10× the 3:00–8:00 trough; the
//! pre-dawn window leaves ≈4 h where ≥32 SoCs are simultaneously idle.

use socflow_cluster::tidal::{TidalTrace, HOURLY_BUSY_FRACTION};

fn main() {
    let trace = TidalTrace::generate(60, 42);
    let rows: Vec<Vec<String>> = (0..24)
        .map(|h| {
            let frac = trace.busy_fraction(h);
            let bar = "#".repeat((frac * 40.0).round() as usize);
            vec![
                format!("{h:02}:00"),
                format!("{:.0}%", HOURLY_BUSY_FRACTION[h] * 100.0),
                format!("{:.0}%", frac * 100.0),
                bar,
            ]
        })
        .collect();
    socflow_bench::print_table(
        "Figure 3: busy SoCs (%) within a day (60-SoC server)",
        &["hour", "target", "measured", ""],
        &rows,
    );

    let trough: f64 = (3..8).map(|h| trace.busy_fraction(h)).sum::<f64>() / 5.0;
    let peak: f64 = (11..17).map(|h| trace.busy_fraction(h)).sum::<f64>() / 6.0;
    println!(
        "\npeak/trough ratio: {:.1}x (paper: >10x)",
        peak / trough.max(1e-9)
    );
    let (start, len) = trace.best_idle_window(32);
    println!(
        "longest window with >=32 idle SoCs: {len} h starting {start:02}:00 (paper assumes ~4 h)"
    );
}
