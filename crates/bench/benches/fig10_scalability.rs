//! Figure 10: elapsed training time to the same target accuracy as the
//! SoC count grows (8 → 32), for all methods on all workloads.
//!
//! Paper shape: SoCFlow is fastest at every scale and its advantage grows
//! with the SoC count (2.6× larger speedups at 32 SoCs than at 8),
//! because group-wise parallelism adds groups instead of stretching one
//! bandwidth-starved ring.

use socflow_bench::{epochs, fmt_hours, paper_workloads, print_table, run_comparison};

fn main() {
    let n_epochs = epochs();
    // a representative subset keeps the bench affordable; set
    // SOCFLOW_ALL_WORKLOADS=1 to sweep all eight
    let all = std::env::var("SOCFLOW_ALL_WORKLOADS").is_ok();
    let defs = paper_workloads();
    let selected: Vec<_> = if all {
        defs.iter().collect()
    } else {
        defs.iter()
            .filter(|d| ["VGG11", "ResNet18", "LeNet5-FMNIST"].contains(&d.name))
            .collect()
    };

    for def in selected {
        let mut rows = Vec::new();
        let mut speedup_vs_ring = Vec::new();
        for socs in [8usize, 16, 24, 32] {
            let groups = (socs / 4).max(1); // intra-board-sized groups at every scale
            let runs = run_comparison(def, socs, n_epochs, groups);
            let target = runs
                .iter()
                .map(|r| r.result.best_accuracy())
                .fold(0.0f32, f32::max)
                * 0.95;
            let mut row = vec![socs.to_string()];
            let mut times = Vec::new();
            for r in &runs {
                let t = r.result.time_to_accuracy(target);
                times.push(t);
                row.push(fmt_hours(t));
            }
            if let (Some(ring), Some(ours)) = (times[1], times[6]) {
                speedup_vs_ring.push((socs, ring / ours));
            }
            rows.push(row);
        }
        print_table(
            &format!("Figure 10: time to target accuracy (hours) — {}", def.name),
            &[
                "SoCs", "PS", "RING", "HiPress", "2D-Paral", "FedAvg", "T-FedAvg", "Ours",
            ],
            &rows,
        );
        for (socs, s) in &speedup_vs_ring {
            println!("  {socs} SoCs: Ours is {s:.1}x faster than RING");
        }
        if speedup_vs_ring.len() >= 2 {
            let first = speedup_vs_ring.first().unwrap().1;
            let last = speedup_vs_ring.last().unwrap().1;
            println!(
                "  speedup growth 8→32 SoCs: {:.2}x (paper: benefits grow ~2.6x)",
                last / first
            );
        }
    }
}
