//! The CLI subcommands.

use crate::args::Options;
use socflow::checkpoint::{Checkpoint, CheckpointPolicy};
use socflow::config::{MethodSpec, SocFlowConfig, StreamingConfig, TrainJobSpec};
use socflow::engine::Workload;
use socflow::fleet::{standard_job_mix, FleetPolicy, FleetSim, FleetSpec};
use socflow::scheduler::GlobalScheduler;
use socflow_cluster::faults::FaultPlan;
use socflow_cluster::tidal::TidalTrace;
use socflow_cluster::ClusterSpec;
use socflow_data::DatasetPreset;
use socflow_nn::models::ModelKind;
use socflow_telemetry::{read_trace, Summary, TraceWriter};
use std::sync::Arc;

/// Prints the usage banner.
pub fn print_usage() {
    eprintln!(
        "socflow-cli — SoCFlow reproduction CLI

USAGE:
  socflow-cli plan  [--socs N] [--groups G]
  socflow-cli train [--model M] [--dataset D] [--method X] [--socs N]
                [--groups G] [--epochs E] [--samples S] [--seed S] [--json]
                [--auto [--auto-budget N]]
                [--streaming [--rates P] [--buffer-batches N]
                 [--on-full drop|block]]
  socflow-cli tune  [--model M] [--dataset D] [--method X] [--socs N]
                [--groups G] [--seed S] [--auto-budget N]
                [--profiled-beta F] [--json]
  socflow-cli compare [--model M] [--dataset D] [--socs N] [--epochs E]
  socflow-cli tidal [--socs N] [--seed S]
  socflow-cli fleet [--servers N] [--jobs M] [--policy tidal|fifo]
                [--socs N] [--horizon H] [--interarrival S] [--seed S]
                [--trace <path>] [--json]
  socflow-cli trace summarize <run.jsonl> [--spans-full]
  socflow-cli bench kernels [--fast] [--json <path>]
  socflow-cli bench faults [--fast] [--json <path>]
  socflow-cli bench timeline [--fast] [--json <path>]
  socflow-cli bench e2e [--fast] [--json <path>]
  socflow-cli bench fleet [--fast] [--json <path>]
  socflow-cli bench streaming [--fast] [--json <path>]
  socflow-cli bench autotune [--fast] [--json <path>]
  socflow-cli info

  --threads <N> (train, compare): size of the host worker pool
      (default: SOCFLOW_THREADS env var, else all cores). Results are
      bit-identical at any thread count; only wall-clock time changes.
  --trace <path> (train): write a JSONL telemetry trace of the run
  --profile-kernels (train): attribute host compute time to tensor
      kernels (matmul/conv/quant) — printed after the run and recorded
      in the trace as KernelTotals events
  --faults <reclaim_s>:<crash_s> (train): sample a fault timeline with
      these mean inter-arrival times (e.g. 600:3600) and inject it
  --checkpoint-dir <dir> (train): persist durable checkpoints there
  --checkpoint-every <N> (train): checkpoint cadence in epochs
      (default 1 when --checkpoint-dir is set)
  --resume (train): continue bit-exactly from the latest checkpoint
      in --checkpoint-dir
  --timeline (train): price SoCFlow epochs with the event-driven fluid
      timeline (compute and CG collectives contend on one simulated
      clock) instead of the closed-form Eq. 1 sums; with --trace, span
      and link-utilization events land in the trace
  --overlap (train): bucket gradients per layer and overlap their CG
      transfers with the remainder of backprop on the fluid timeline
      (wait-free bucketing; implies --timeline). Pricing only — the
      accuracy stream is bit-identical to a non-overlapped run
  --bucket-kb <N> (train): minimum gradient-bucket size in KiB of
      reference payload (default 4096; requires --overlap)
  --profiled-beta <f> (train): override the calibrated β compute-power
      ratio with a measured value in (0,1) — typically the β that
      `bench kernels` reports from timing the f32 and i8 GEMMs
  --auto (train): search the parallelization-plan space (group count x
      sync schedule x bucket size x β source) on the simulated clock
      before training and adopt the fastest predicted plan. Replaces
      --timeline/--overlap/--bucket-kb — the winner decides them. The
      search is deterministic: bit-identical at any --threads setting
  --auto-budget <N> (train --auto, tune): cap on candidate plans priced
      on the fluid timeline (default 64). `tune` prints the ranked
      candidate table without training; --json emits it on stdout
  --streaming (train): ingest training data from live per-SoC streams
      instead of the static pre-partitioned corpus. Epoch shards come
      from a deterministic stream; supply deficits stall only the short
      group and are priced on the simulated clock
  --rates <P> (train): per-SoC stream-rate profile with --streaming:
      uniform | hetero | bimodal (default uniform). Non-uniform spreads
      trigger rate-aware regrouping (fast SoCs group together and data
      shares follow observed rates)
  --buffer-batches <N> (train): per-group ingest-buffer capacity in
      multiples of the global batch (default 2; requires --streaming)
  --on-full drop|block (train): what a full ingest buffer does with
      fresh arrivals — shed them (drop) or exert backpressure (block,
      the default; requires --streaming)
  --servers/--jobs/--policy/--horizon/--interarrival (fleet): size the
      simulated fleet (servers x --socs SoCs each), the Poisson arrival
      trace, and the admission policy (tidal = window-aware + priorities,
      fifo = naive greedy). All simulated-clock and deterministic in
      --seed; --trace records job lifecycle events

  models:   lenet5 | vgg11 | resnet18 | resnet50 | mobilenet | tinyvit
  datasets: cifar10 | emnist | fmnist | celeba | cinic10
  methods:  ours | ours-int8 | ours-half | ring | ps | hipress | 2d |
            fedavg | t-fedavg | local"
    );
}

fn model_of(name: &str) -> Result<ModelKind, String> {
    Ok(match name {
        "lenet5" | "lenet" => ModelKind::LeNet5,
        "vgg11" | "vgg" => ModelKind::Vgg11,
        "resnet18" | "r18" => ModelKind::ResNet18,
        "resnet50" | "r50" => ModelKind::ResNet50,
        "mobilenet" => ModelKind::MobileNetV1,
        "tinyvit" | "vit" => ModelKind::TinyViT,
        other => {
            return Err(format!(
                "unknown model `{other}`; known models: lenet5 | vgg11 | resnet18 | \
                 resnet50 | mobilenet | tinyvit"
            ))
        }
    })
}

fn dataset_of(name: &str) -> Result<DatasetPreset, String> {
    Ok(match name {
        "cifar10" | "cifar" => DatasetPreset::Cifar10,
        "emnist" => DatasetPreset::Emnist,
        "fmnist" | "fashion-mnist" => DatasetPreset::FashionMnist,
        "celeba" => DatasetPreset::CelebA,
        "cinic10" | "cinic" => DatasetPreset::Cinic10,
        other => return Err(format!("unknown dataset `{other}`")),
    })
}

fn method_of(name: &str, groups: Option<usize>) -> Result<MethodSpec, String> {
    let cfg = SocFlowConfig {
        groups,
        ..SocFlowConfig::full()
    };
    Ok(match name {
        "ours" | "socflow" => MethodSpec::SocFlow(cfg),
        "ours-int8" => MethodSpec::SocFlowInt8(cfg),
        "ours-half" => MethodSpec::SocFlowHalf(cfg),
        "ring" => MethodSpec::Ring,
        "ps" => MethodSpec::ParameterServer,
        "hipress" => MethodSpec::HiPress,
        "2d" | "2d-paral" => MethodSpec::TwoDParallel { group_size: 4 },
        "fedavg" => MethodSpec::FedAvg,
        "t-fedavg" | "tfedavg" => MethodSpec::TFedAvg { fanout: 2 },
        "local" => MethodSpec::Local,
        other => return Err(format!("unknown method `{other}`")),
    })
}

fn default_width(model: ModelKind) -> f32 {
    match model {
        ModelKind::LeNet5 => 0.5,
        ModelKind::Vgg11 => 0.22,
        ModelKind::ResNet18 => 0.18,
        ModelKind::ResNet50 => 0.1,
        ModelKind::MobileNetV1 => 0.22,
        ModelKind::TinyViT => 0.5,
    }
}

/// `socflow-cli plan`: print the grouping/mapping/CG pipeline for a cluster.
pub fn plan(opts: &Options) -> Result<(), String> {
    let cluster = ClusterSpec::for_socs(opts.socs);
    let groups = opts.groups.unwrap_or(opts.socs.div_euclid(4).max(1));
    println!(
        "cluster: {} boards x {} SoCs — planning {} logical groups over {} SoCs",
        cluster.boards, cluster.socs_per_board, groups, opts.socs
    );
    let mapping = socflow::mapping::integrity_greedy(&cluster, opts.socs, groups);
    for g in 0..mapping.num_groups() {
        let gid = socflow::mapping::GroupId(g);
        let members: Vec<String> = mapping.group(gid).iter().map(|s| s.to_string()).collect();
        println!(
            "  {gid}: [{}]{}",
            members.join(", "),
            if mapping.is_split(gid) {
                "  (split)"
            } else {
                ""
            }
        );
    }
    println!("conflict count C = {}", mapping.conflict_count());
    match socflow::planning::divide_communication_groups(&mapping) {
        Ok(cgs) => {
            for (i, cg) in cgs.cgs.iter().enumerate() {
                let names: Vec<String> = cg.iter().map(|g| g.to_string()).collect();
                println!("CG{}: {}", i + 1, names.join(", "));
            }
            Ok(())
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Parses a `--faults` spec `<mean_reclaim_s>:<mean_crash_s>`.
fn fault_plan_of(spec: &str, socs: usize, seed: u64) -> Result<FaultPlan, String> {
    let err = || format!("`--faults` expects <mean_reclaim_s>:<mean_crash_s>, got `{spec}`");
    let (reclaim, crash) = spec.split_once(':').ok_or_else(err)?;
    let mean_reclaim: f64 = reclaim.parse().map_err(|_| err())?;
    let mean_crash: f64 = crash.parse().map_err(|_| err())?;
    if mean_reclaim <= 0.0 || mean_crash <= 0.0 {
        return Err("`--faults` means must be positive seconds".into());
    }
    // a horizon far past any simulated run: events beyond the job's
    // simulated clock simply never fire
    Ok(FaultPlan::sample(socs, 1e9, mean_reclaim, mean_crash, seed))
}

/// `socflow-cli train`: run one training job and report the results.
pub fn train(opts: &Options) -> Result<(), String> {
    if let Some(t) = opts.threads {
        socflow_tensor::runtime::set_threads(t);
    }
    let model = model_of(&opts.model)?;
    let preset = dataset_of(&opts.dataset)?;
    let method = method_of(&opts.method, opts.groups)?;
    let mut spec = TrainJobSpec::new(model, preset, method);
    spec.socs = opts.socs;
    spec.epochs = opts.epochs;
    spec.seed = opts.seed;
    spec.lr = 0.05;
    if opts.auto_budget.is_some() && !opts.auto {
        return Err("--auto-budget needs --auto (or the `tune` command)".into());
    }
    if opts.auto
        && !matches!(
            method,
            MethodSpec::SocFlow(_) | MethodSpec::SocFlowInt8(_) | MethodSpec::SocFlowHalf(_)
        )
    {
        return Err(format!(
            "--auto tunes the SoCFlow plan space and needs a SoCFlow method \
             (ours | ours-int8 | ours-half), got `{}`",
            opts.method
        ));
    }
    let workload = Workload::standard(&spec, opts.samples, 8, default_width(model));
    let mut sched = GlobalScheduler::new(spec, workload);
    if opts.auto {
        sched = sched.with_autotune(opts.auto_budget);
    }
    if opts.timeline {
        sched = sched.with_timeline(true);
    }
    if opts.overlap {
        sched = sched.with_overlap(true);
    }
    if let Some(kb) = opts.bucket_kb {
        sched = sched.with_bucket_kb(kb);
    }
    if let Some(beta) = opts.profiled_beta {
        sched = sched.with_profiled_beta(beta);
    }
    if opts.streaming {
        let mut scfg = StreamingConfig::new(socflow_data::stream::RateProfile::parse(&opts.rates)?);
        scfg.buffer_batches = opts.buffer_batches;
        scfg.on_full = socflow_data::stream::OnFull::parse(&opts.on_full)?;
        sched = sched.with_streaming(scfg);
    }
    if let Some(path) = &opts.trace {
        let writer = TraceWriter::create(path)
            .map_err(|e| format!("cannot create trace file `{path}`: {e}"))?;
        sched = sched.with_sink(Arc::new(writer));
    }
    if let Some(fspec) = &opts.faults {
        sched = sched.with_fault_plan(fault_plan_of(fspec, opts.socs, opts.seed)?);
    }
    if let Some(dir) = &opts.checkpoint_dir {
        let policy = CheckpointPolicy {
            every_epochs: Some(opts.checkpoint_every.unwrap_or(1).max(1)),
            on_reclaim: true,
        };
        sched = sched.with_checkpointing(dir.into(), policy);
        if opts.resume {
            let ckpt = Checkpoint::load(std::path::Path::new(dir))
                .map_err(|e| format!("cannot resume from `{dir}`: {e}"))?;
            eprintln!(
                "resuming from epoch {} ({} streams, {} SoCs alive)",
                ckpt.epoch,
                ckpt.num_replicas(),
                ckpt.alive.len()
            );
            sched = sched.with_resume(ckpt);
        }
    }
    let profile_base = opts.profile_kernels.then(|| {
        socflow_tensor::profile::set_enabled(true);
        socflow_tensor::profile::snapshot()
    });
    let result = sched.run();
    if let Some(base) = profile_base {
        socflow_tensor::profile::set_enabled(false);
        // stderr keeps `--json` stdout machine-readable
        eprintln!("\nhost kernel time:");
        for (b, n) in base.iter().zip(socflow_tensor::profile::snapshot()) {
            let calls = n.calls.saturating_sub(b.calls);
            if calls > 0 {
                eprintln!(
                    "  {:<14} {:>10.3} ms  {:>8} calls",
                    n.op,
                    n.nanos.saturating_sub(b.nanos) as f64 / 1e6,
                    calls
                );
            }
        }
    }

    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!(
        "{} on {} with {} ({} SoCs, {} epochs)",
        model, preset, result.method, opts.socs, opts.epochs
    );
    println!("epoch  accuracy  sim-time(min)");
    let mut t = 0.0;
    for (i, acc) in result.epoch_accuracy.iter().enumerate() {
        t += result.epoch_time[i];
        println!("{:>5}  {:>7.1}%  {:>10.1}", i + 1, acc * 100.0, t / 60.0);
    }
    println!(
        "\nbest accuracy {:.1}% | simulated {:.2} h | {:.0} kJ | sync share {:.0}%",
        result.best_accuracy() * 100.0,
        result.total_time() / 3600.0,
        result.energy_joules / 1e3,
        result.breakdown.sync / result.breakdown.total().max(1e-9) * 100.0
    );
    if result.recovery_time > 0.0 {
        println!(
            "crash recovery stalls: {:.1} s ({:.2}% of run time)",
            result.recovery_time,
            result.recovery_time / result.total_time().max(1e-9) * 100.0
        );
    }
    Ok(())
}

/// Serializes a [`socflow::autotune::PlanChoice`] as a JSON object.
fn plan_choice_json(c: &socflow::autotune::PlanChoice) -> serde_json::Value {
    use serde_json::Value;
    Value::Object(vec![
        ("groups".into(), Value::U64(c.candidate.groups as u64)),
        (
            "schedule".into(),
            Value::Str(c.candidate.schedule_name().into()),
        ),
        (
            "bucket_kb".into(),
            match c.candidate.bucket_kb {
                Some(kb) => Value::U64(kb as u64),
                None => Value::Null,
            },
        ),
        (
            "profiled_beta".into(),
            match c.candidate.profiled_beta {
                Some(b) => Value::F64(b),
                None => Value::Null,
            },
        ),
        ("predicted_s".into(), Value::F64(c.predicted_s)),
        ("bound_s".into(), Value::F64(c.bound_s)),
    ])
}

/// `socflow-cli tune`: search the parallelization-plan space and print the
/// ranked candidate table without training.
///
/// The search runs entirely on the simulated clock and is deterministic:
/// the `--json` output is byte-identical across reruns and any `--threads`
/// setting (CI diffs it across `SOCFLOW_THREADS` values).
pub fn tune(opts: &Options) -> Result<(), String> {
    if let Some(t) = opts.threads {
        socflow_tensor::runtime::set_threads(t);
    }
    let model = model_of(&opts.model)?;
    let preset = dataset_of(&opts.dataset)?;
    let method = method_of(&opts.method, opts.groups)?;
    if !matches!(
        method,
        MethodSpec::SocFlow(_) | MethodSpec::SocFlowInt8(_) | MethodSpec::SocFlowHalf(_)
    ) {
        return Err(format!(
            "tune searches the SoCFlow plan space and needs a SoCFlow method \
             (ours | ours-int8 | ours-half), got `{}`",
            opts.method
        ));
    }
    let mut spec = TrainJobSpec::new(model, preset, method);
    spec.socs = opts.socs;
    spec.epochs = opts.epochs;
    spec.seed = opts.seed;
    spec.lr = 0.05;
    let workload = Workload::standard(&spec, opts.samples, 8, default_width(model));
    let mut sched = GlobalScheduler::new(spec, workload).with_autotune(opts.auto_budget);
    if let Some(beta) = opts.profiled_beta {
        sched = sched.with_profiled_beta(beta);
    }
    let report = sched.tune();
    let default = report.default_plan;
    let best = report.best();

    if opts.json {
        use serde_json::Value;
        let doc = Value::Object(vec![
            ("schema".into(), Value::Str("socflow-tune/v1".into())),
            ("model".into(), Value::Str(opts.model.clone())),
            ("dataset".into(), Value::Str(opts.dataset.clone())),
            ("method".into(), Value::Str(opts.method.clone())),
            ("socs".into(), Value::U64(opts.socs as u64)),
            ("evaluated".into(), Value::U64(report.evaluated as u64)),
            ("pruned".into(), Value::U64(report.pruned as u64)),
            ("skipped".into(), Value::U64(report.skipped as u64)),
            ("speedup".into(), Value::F64(report.speedup())),
            ("default".into(), plan_choice_json(&default)),
            ("best".into(), plan_choice_json(&best)),
            (
                "ranked".into(),
                Value::Array(report.ranked.iter().map(plan_choice_json).collect()),
            ),
        ]);
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!(
        "plan search: {} on {} with {} over {} SoCs",
        model, preset, opts.method, opts.socs
    );
    println!(
        "{} candidates priced, {} pruned by the compute bound, {} skipped (budget)",
        report.evaluated, report.pruned, report.skipped
    );
    println!("\nrank  groups  schedule     bucket   beta      predicted(s)");
    for (i, c) in report.ranked.iter().take(10).enumerate() {
        println!(
            "{:>4}  {:>6}  {:<11}  {:>7}  {:<8}  {:>12.3}",
            i + 1,
            c.candidate.groups,
            c.candidate.schedule_name(),
            c.candidate
                .bucket_kb
                .map_or("-".to_string(), |kb| format!("{kb} KiB")),
            c.candidate
                .profiled_beta
                .map_or("calib".to_string(), |b| format!("{b:.3}")),
            c.predicted_s,
        );
    }
    println!(
        "\ndefault plan: {} groups, {} — predicted {:.3} s",
        default.candidate.groups,
        default.candidate.schedule_name(),
        default.predicted_s
    );
    println!(
        "best plan:    {} groups, {}{} — predicted {:.3} s ({:.2}x vs default)",
        best.candidate.groups,
        best.candidate.schedule_name(),
        best.candidate
            .bucket_kb
            .map_or(String::new(), |kb| format!(" @ {kb} KiB buckets")),
        best.predicted_s,
        report.speedup()
    );
    Ok(())
}

/// `socflow-cli compare`: run the method comparison on one workload.
pub fn compare(opts: &Options) -> Result<(), String> {
    if let Some(t) = opts.threads {
        socflow_tensor::runtime::set_threads(t);
    }
    let model = model_of(&opts.model)?;
    let preset = dataset_of(&opts.dataset)?;
    let methods: Vec<(&str, MethodSpec)> = vec![
        ("PS", MethodSpec::ParameterServer),
        ("RING", MethodSpec::Ring),
        ("HiPress", MethodSpec::HiPress),
        ("2D-Paral", MethodSpec::TwoDParallel { group_size: 4 }),
        ("FedAvg", MethodSpec::FedAvg),
        ("Ours", method_of("ours", opts.groups)?),
    ];
    println!(
        "{} on {} — {} SoCs, {} epochs, {} samples",
        model, preset, opts.socs, opts.epochs, opts.samples
    );
    println!(
        "{:<10} {:>9} {:>11} {:>10}",
        "method", "best acc", "sim time h", "energy kJ"
    );
    for (name, method) in methods {
        let mut spec = TrainJobSpec::new(model, preset, method);
        spec.socs = opts.socs;
        spec.epochs = opts.epochs;
        spec.seed = opts.seed;
        spec.lr = 0.05;
        let workload = Workload::standard(&spec, opts.samples, 8, default_width(model));
        let r = GlobalScheduler::new(spec, workload).run();
        println!(
            "{:<10} {:>8.1}% {:>11.2} {:>10.0}",
            name,
            r.best_accuracy() * 100.0,
            r.total_time() / 3600.0,
            r.energy_joules / 1e3
        );
    }
    Ok(())
}

/// `socflow-cli tidal`: print the diurnal utilization trace.
pub fn tidal(opts: &Options) -> Result<(), String> {
    let trace = TidalTrace::generate(opts.socs.max(1), opts.seed);
    for h in 0..24 {
        let frac = trace.busy_fraction(h);
        println!(
            "{h:02}:00  {:>3.0}%  {}",
            frac * 100.0,
            "#".repeat((frac * 40.0).round() as usize)
        );
    }
    let (start, len) = trace.best_idle_window(opts.socs / 2);
    println!(
        "\nbest window with >={} idle SoCs: {len} h starting {start:02}:00",
        opts.socs / 2
    );
    Ok(())
}

/// `socflow-cli fleet`: simulate a multi-tenant fleet of SoC-Cluster
/// servers packing trace-driven job arrivals onto tidal-idle capacity,
/// and print per-job outcomes plus throughput/JCT/utilization.
pub fn fleet(opts: &Options) -> Result<(), String> {
    let policy = FleetPolicy::parse(&opts.policy)?;
    let spec = FleetSpec {
        servers: opts.servers,
        socs_per_server: opts.socs,
        seed: opts.seed,
        horizon_hours: opts.horizon,
        policy,
    };
    let jobs = standard_job_mix(opts.jobs, opts.interarrival, opts.seed);
    let mut sim = FleetSim::new(spec, jobs);
    if let Some(path) = &opts.trace {
        let writer = TraceWriter::create(path)
            .map_err(|e| format!("cannot create trace file `{path}`: {e}"))?;
        sim = sim.with_sink(Arc::new(writer));
    }
    let report = sim.run();
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!(
        "{} servers x {} SoCs, {} jobs, seed {}\n",
        opts.servers, opts.socs, opts.jobs, opts.seed
    );
    println!("job  prio  arrival_h  admit_h  finish_h  preempts");
    for j in &report.jobs {
        let fmt_h = |s: Option<f64>| match s {
            Some(s) => format!("{:>7.2}", s / 3600.0),
            None => format!("{:>7}", "-"),
        };
        println!(
            "{:>3}  {:>4}  {:>9.2}  {}  {}  {:>8}",
            j.id,
            j.priority,
            j.arrival_s / 3600.0,
            fmt_h(j.first_admit_s),
            fmt_h(j.completed_s),
            j.preemptions
        );
    }
    println!();
    print!("{}", report.render());
    Ok(())
}

/// `socflow-cli trace <action> <path>`: inspect a recorded telemetry trace.
///
/// `summarize` replays the JSONL events and prints the aggregate report —
/// the same per-run Breakdown the engine computed, reproduced from the
/// trace alone (Fig. 12-style compute/sync/update shares plus network and
/// scheduler counters). With `--spans-full` it additionally prints every
/// recorded timeline span (the summary otherwise reports only the span
/// *count*, and the engine digest keeps the first 2 spans per lane×kind),
/// with gradient-bucket lanes grouped by the model layers they carry.
pub fn trace(argv: &[String]) -> Result<(), String> {
    match argv {
        [action, path] if action == "summarize" => trace_summarize(path, false),
        [action, path, flag] if action == "summarize" && flag == "--spans-full" => {
            trace_summarize(path, true)
        }
        _ => Err("usage: socflow-cli trace summarize <run.jsonl> [--spans-full]".into()),
    }
}

fn trace_summarize(path: &str, spans_full: bool) -> Result<(), String> {
    let events = read_trace(path)?;
    if events.is_empty() {
        return Err(format!("trace `{path}` contains no events"));
    }
    let summary = Summary::from_events(&events);
    println!("{}", summary.render());
    if spans_full {
        println!("{}", socflow_telemetry::render_spans(&events));
    }
    Ok(())
}

/// `socflow-cli info`: models, datasets and calibration summary.
pub fn info() -> Result<(), String> {
    println!("models (reference params / payload):");
    for m in ModelKind::ALL {
        println!(
            "  {m:<12} {:>10} params  {:>6.1} MB FP32 payload",
            m.reference_params(),
            m.payload_bytes_fp32() as f64 / 1e6
        );
    }
    println!("\ndatasets (reference size):");
    for d in DatasetPreset::ALL {
        let s = d.spec();
        println!(
            "  {d:<14} {}x{}x{}  {} classes  {} samples",
            s.channels, s.size, s.size, s.classes, s.reference_samples
        );
    }
    let c = ClusterSpec::paper_server();
    println!(
        "\ncluster: {} boards x {} SoCs, {} Gb/s SoC links, {} Gb/s NICs, {} Gb/s switch",
        c.boards,
        c.socs_per_board,
        c.soc_link_bps / 1e9,
        c.board_uplink_bps / 1e9,
        c.switch_bps / 1e9
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_and_dataset_lookup() {
        assert_eq!(model_of("vgg11").unwrap(), ModelKind::Vgg11);
        assert_eq!(model_of("tinyvit").unwrap(), ModelKind::TinyViT);
        let err = model_of("gpt4").unwrap_err();
        assert!(
            err.contains("gpt4") && err.contains("known models:"),
            "{err}"
        );
        assert_eq!(dataset_of("cifar10").unwrap(), DatasetPreset::Cifar10);
        assert!(dataset_of("imagenet").is_err());
    }

    #[test]
    fn method_lookup_respects_groups() {
        match method_of("ours", Some(4)).unwrap() {
            MethodSpec::SocFlow(cfg) => assert_eq!(cfg.groups, Some(4)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(method_of("carrier-pigeon", None).is_err());
    }

    #[test]
    fn plan_runs() {
        let opts = Options {
            socs: 15,
            groups: Some(5),
            ..Options::default()
        };
        plan(&opts).unwrap();
    }

    #[test]
    fn tidal_runs() {
        let opts = Options {
            socs: 20,
            ..Options::default()
        };
        tidal(&opts).unwrap();
        info().unwrap();
    }

    #[test]
    fn train_runs_tiny() {
        let opts = Options {
            socs: 8,
            groups: Some(2),
            epochs: 1,
            samples: 128,
            ..Options::default()
        };
        train(&opts).unwrap();
    }

    #[test]
    fn train_runs_streaming() {
        let opts = Options {
            socs: 8,
            groups: Some(4),
            epochs: 1,
            samples: 128,
            streaming: true,
            rates: "bimodal".into(),
            on_full: "drop".into(),
            buffer_batches: 1,
            ..Options::default()
        };
        train(&opts).unwrap();
    }

    #[test]
    fn train_runs_with_timeline() {
        let opts = Options {
            socs: 8,
            groups: Some(2),
            epochs: 1,
            samples: 128,
            timeline: true,
            ..Options::default()
        };
        train(&opts).unwrap();
    }

    #[test]
    fn train_runs_with_overlap_and_full_span_summary() {
        let path = std::env::temp_dir().join("socflow_cli_overlap_trace.jsonl");
        std::fs::remove_file(&path).ok();
        let opts = Options {
            socs: 8,
            groups: Some(2),
            epochs: 1,
            samples: 128,
            overlap: true,
            bucket_kb: Some(32),
            trace: Some(path.to_string_lossy().into_owned()),
            ..Options::default()
        };
        train(&opts).unwrap();
        let p = path.to_string_lossy().into_owned();
        let argv = vec!["summarize".to_string(), p.clone()];
        trace(&argv).unwrap();
        let full = vec![
            "summarize".to_string(),
            p.clone(),
            "--spans-full".to_string(),
        ];
        trace(&full).unwrap();
        let bad = vec!["summarize".to_string(), p, "--bogus".to_string()];
        assert!(trace(&bad).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_spec_parses_and_rejects() {
        let plan = fault_plan_of("600:3600", 8, 42).unwrap();
        assert!(!plan.events().is_empty(), "dense spec yields events");
        assert!(fault_plan_of("600", 8, 42).is_err());
        assert!(fault_plan_of("0:3600", 8, 42).is_err());
        assert!(fault_plan_of("x:y", 8, 42).is_err());
    }

    #[test]
    fn train_with_faults_survives() {
        let opts = Options {
            socs: 8,
            groups: Some(2),
            epochs: 2,
            samples: 128,
            faults: Some("200:400".into()),
            ..Options::default()
        };
        train(&opts).unwrap();
    }

    #[test]
    fn train_checkpoints_and_resumes() {
        let dir = std::env::temp_dir().join("socflow_cli_resume_test");
        std::fs::remove_dir_all(&dir).ok();
        let base = Options {
            socs: 8,
            groups: Some(2),
            epochs: 2,
            samples: 128,
            checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
            checkpoint_every: Some(1),
            ..Options::default()
        };
        train(&base).unwrap();
        let resumed = Options {
            epochs: 3,
            resume: true,
            ..base.clone()
        };
        train(&resumed).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        // resuming from a missing dir errors cleanly
        let missing = Options {
            resume: true,
            ..base
        };
        assert!(train(&missing).is_err());
    }
}
