//! `socflow-cli bench` — reproducible benchmark baselines.
//!
//! `bench kernels` is the host micro-kernel suite; `bench faults` is the
//! fault-tolerance recovery experiment (simulated, machine-independent);
//! `bench timeline` compares the closed-form Eq. 1 epoch pricing against
//! the event-driven fluid timeline across logical-group counts (also
//! simulated and machine-independent). `bench e2e` wall-clocks one full
//! training run (train step + eval + aggregation) at worker-pool sizes
//! 1/2/4/all, verifying along the way that the accuracy trajectory is
//! bit-identical at every pool size. `bench fleet` replays the tidal-trace
//! multi-tenant scheduler comparison, `bench streaming` measures
//! time-to-accuracy under live per-SoC data streams (uniform vs
//! heterogeneous rates, rate-aware regrouping on vs off), and
//! `bench autotune` runs the plan-space search for the bundled model
//! families and reports tuned-vs-default predicted epoch seconds.
//!
//! Runs the tensor micro-kernels the training hot path lives in (tiled
//! GEMM variants, transpose, the pooled conv2d forward/backward, the fused
//! fake-quantize pass) on fixed shapes with deterministic inputs, and
//! reports minimum wall time per iteration plus achieved GFLOP/s. With
//! `--json <path>` the numbers are also written as a machine-readable
//! baseline file (`BENCH_kernels.json` in the repo root records one
//! reference machine); CI's bench-smoke job runs `--fast` to keep the
//! harness itself from rotting.
//!
//! Minimum-of-N timing is used instead of the mean: the minimum estimates
//! the noise-free cost of the kernel, which is the number optimization
//! work should be judged against.

use socflow_tensor::conv::{self, ConvParams, ConvScratch};
use socflow_tensor::quant::{self, QuantFormat, QuantParams};
use socflow_tensor::{linalg, Tensor};
use std::time::Instant;

/// One benchmark measurement.
struct Measurement {
    op: &'static str,
    shape: String,
    iters: u32,
    ns_per_iter: f64,
    /// Floating-point (or element, for data-movement ops) operations per
    /// iteration — the numerator of the GFLOP/s column.
    flops: f64,
}

impl Measurement {
    fn gflops(&self) -> f64 {
        if self.ns_per_iter > 0.0 {
            self.flops / self.ns_per_iter
        } else {
            0.0
        }
    }
}

/// Deterministic pseudo-random fill (splitmix-style), so every run of the
/// suite — on any machine — benches identical inputs.
fn fill(data: &mut [f32], mut seed: u64) {
    for v in data.iter_mut() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((seed >> 33) as u32 as f64 / u32::MAX as f64 - 0.5) as f32;
    }
}

fn tensor(shape: impl Into<socflow_tensor::Shape>, seed: u64) -> Tensor {
    let mut t = Tensor::zeros(shape);
    fill(t.data_mut(), seed);
    t
}

/// Minimum wall time of `iters` timed runs after `warmup` untimed ones.
fn time_min(iters: u32, warmup: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

/// Runs the full suite. `fast` trims iteration counts to smoke-test level.
fn run_suite(fast: bool) -> Vec<Measurement> {
    let (iters, warmup) = if fast { (3, 1) } else { (20, 3) };
    let mut out = Vec::new();

    // --- GEMM family at the transformer/classifier-head scale -----------
    let (m, k, n) = (128, 128, 128);
    let a = tensor([m, k], 0x5eed_0001);
    let b = tensor([k, n], 0x5eed_0002);
    let mut c = Tensor::zeros([m, n]);
    let gemm_flops = 2.0 * (m * k * n) as f64;
    let ns = time_min(iters, warmup, || {
        linalg::matmul_slices(a.data(), b.data(), c.data_mut(), m, k, n);
    });
    out.push(Measurement {
        op: "matmul",
        shape: format!("{m}x{k}x{n}"),
        iters,
        ns_per_iter: ns,
        flops: gemm_flops,
    });

    let at = tensor([k, m], 0x5eed_0003); // Aᵀ stored (k, m)
    let ns = time_min(iters, warmup, || {
        linalg::matmul_at_b_slices(at.data(), b.data(), c.data_mut(), m, k, n);
    });
    out.push(Measurement {
        op: "matmul_at_b",
        shape: format!("{m}x{k}x{n}"),
        iters,
        ns_per_iter: ns,
        flops: gemm_flops,
    });

    let bt = tensor([n, k], 0x5eed_0004); // Bᵀ stored (n, k)
    let ns = time_min(iters, warmup, || {
        linalg::matmul_a_bt_slices(a.data(), bt.data(), c.data_mut(), m, k, n);
    });
    out.push(Measurement {
        op: "matmul_a_bt",
        shape: format!("{m}x{k}x{n}"),
        iters,
        ns_per_iter: ns,
        flops: gemm_flops,
    });

    // Awkward edge-tail shape: exercises the partial-tile paths.
    let (m2, k2, n2) = (96, 33, 65);
    let a2 = tensor([m2, k2], 0x5eed_0005);
    let b2 = tensor([k2, n2], 0x5eed_0006);
    let mut c2 = Tensor::zeros([m2, n2]);
    let ns = time_min(iters, warmup, || {
        linalg::matmul_slices(a2.data(), b2.data(), c2.data_mut(), m2, k2, n2);
    });
    out.push(Measurement {
        op: "matmul",
        shape: format!("{m2}x{k2}x{n2}"),
        iters,
        ns_per_iter: ns,
        flops: 2.0 * (m2 * k2 * n2) as f64,
    });

    // --- Integer GEMM (the INT8 replica arm's execution path) -----------
    // Same shapes as the f32 family; the 128³ pair is what the measured
    // β = t_f32 / (t_f32 + t_i8) is computed from.
    let (mut qa, mut qbt) = (Vec::new(), Vec::new());
    quant::quantize_into(&a, QuantParams::from_tensor(&a), &mut qa);
    quant::quantize_into(&bt, QuantParams::from_tensor(&bt), &mut qbt);
    let mut ci = vec![0i32; m * n];
    let ns = time_min(iters, warmup, || {
        linalg::matmul_i8_a_bt_slices(&qa, &qbt, &mut ci, m, k, n);
    });
    out.push(Measurement {
        op: "matmul_i8",
        shape: format!("{m}x{k}x{n}"),
        iters,
        ns_per_iter: ns,
        flops: gemm_flops,
    });

    let bt2 = tensor([n2, k2], 0x5eed_000c); // Bᵀ stored (n, k)
    let (mut qa2, mut qbt2) = (Vec::new(), Vec::new());
    quant::quantize_into(&a2, QuantParams::from_tensor(&a2), &mut qa2);
    quant::quantize_into(&bt2, QuantParams::from_tensor(&bt2), &mut qbt2);
    let mut ci2 = vec![0i32; m2 * n2];
    let ns = time_min(iters, warmup, || {
        linalg::matmul_i8_a_bt_slices(&qa2, &qbt2, &mut ci2, m2, k2, n2);
    });
    out.push(Measurement {
        op: "matmul_i8",
        shape: format!("{m2}x{k2}x{n2}"),
        iters,
        ns_per_iter: ns,
        flops: 2.0 * (m2 * k2 * n2) as f64,
    });

    // --- Transpose (data movement; "flops" = elements moved) ------------
    let (tm, tn) = (256, 256);
    let src = tensor([tm, tn], 0x5eed_0007);
    let mut dst = Tensor::zeros([tn, tm]);
    let ns = time_min(iters, warmup, || {
        linalg::transpose_slices(src.data(), dst.data_mut(), tm, tn);
    });
    out.push(Measurement {
        op: "transpose",
        shape: format!("{tm}x{tn}"),
        iters,
        ns_per_iter: ns,
        flops: (tm * tn) as f64,
    });

    // --- Conv2d through the pooled scratch path --------------------------
    let (cn, ic, hw, oc, kk) = (4, 16, 16, 32, 3);
    let p = ConvParams::new(1, 1);
    let x = tensor([cn, ic, hw, hw], 0x5eed_0008);
    let w = tensor([oc, ic, kk, kk], 0x5eed_0009);
    let mut scratch = ConvScratch::default();
    let mut y = Tensor::default();
    let oh = p.out_size(hw, kk);
    let conv_flops = 2.0 * (cn * oh * oh * oc * ic * kk * kk) as f64;
    let ns = time_min(iters, warmup, || {
        conv::conv2d_scratch(&x, &w, p, &mut scratch, &mut y);
    });
    out.push(Measurement {
        op: "conv2d",
        shape: format!("{cn}x{ic}x{hw}x{hw}->{oc}"),
        iters,
        ns_per_iter: ns,
        flops: conv_flops,
    });

    let gy = tensor(y.shape().clone(), 0x5eed_000a);
    let patches = scratch.patches.clone();
    let mut back = ConvScratch::default();
    let (mut gx, mut gw) = (Tensor::default(), Tensor::default());
    let ns = time_min(iters, warmup, || {
        conv::conv2d_backward_scratch(&gy, &patches, &w, x.shape(), p, &mut back, &mut gx, &mut gw);
    });
    out.push(Measurement {
        op: "conv2d_backward",
        shape: format!("{cn}x{ic}x{hw}x{hw}->{oc}"),
        iters,
        ns_per_iter: ns,
        flops: 2.0 * conv_flops, // two GEMMs of the forward's size
    });

    // --- Fused quantize→dequantize ---------------------------------------
    let q_in = tensor([256, 256], 0x5eed_000b);
    let mut q_out = Tensor::default();
    let ns = time_min(iters, warmup, || {
        QuantFormat::Int8.fake_quant_into(&q_in, &mut q_out);
    });
    out.push(Measurement {
        op: "fake_quant_int8",
        shape: "65536".into(),
        iters,
        ns_per_iter: ns,
        flops: (256 * 256) as f64,
    });

    out
}

/// The measured β compute-power ratio from the 128³ GEMM pair:
/// β = t_f32 / (t_f32 + t_i8), the host analogue of the paper's
/// CPU-vs-NPU split. Feed it back via `train --profiled-beta`.
fn measured_beta(results: &[Measurement]) -> Option<f64> {
    let row = |op: &str| {
        results
            .iter()
            .find(|r| r.op == op && r.shape == "128x128x128")
            .map(|r| r.ns_per_iter)
    };
    let (f32_ns, i8_ns) = (row("matmul")?, row("matmul_i8")?);
    let total = f32_ns + i8_ns;
    (total > 0.0).then(|| f32_ns / total)
}

fn to_json(results: &[Measurement], fast: bool) -> serde_json::Value {
    use serde_json::Value;
    let rows = results
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("op".into(), Value::Str(r.op.into())),
                ("shape".into(), Value::Str(r.shape.clone())),
                ("iters".into(), Value::U64(u64::from(r.iters))),
                ("ns_per_iter".into(), Value::F64(r.ns_per_iter)),
                ("gflops".into(), Value::F64(r.gflops())),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "schema".into(),
            Value::Str("socflow-kernel-bench/v1".into()),
        ),
        (
            "mode".into(),
            Value::Str(if fast { "fast" } else { "full" }.into()),
        ),
        (
            "profiled_beta".into(),
            Value::F64(measured_beta(results).unwrap_or(0.0)),
        ),
        ("results".into(), Value::Array(rows)),
    ])
}

/// One fault-bench scenario result.
struct FaultRun {
    scenario: &'static str,
    /// Mean reclaim / crash inter-arrivals as multiples of the fault-free
    /// run's simulated duration (0 = no faults of that kind).
    reclaim_x: f64,
    crash_x: f64,
    faults_injected: u64,
    best_accuracy: f64,
    sim_time_s: f64,
    recovery_s: f64,
    energy_kj: f64,
}

/// Runs the fault-tolerance recovery experiment: a fault-free baseline
/// establishes the simulated run length, then fault timelines of growing
/// intensity (inter-arrival means expressed relative to that length) are
/// injected into the otherwise-identical job. Everything is simulated and
/// seeded, so the numbers are machine-independent.
fn run_fault_suite(fast: bool) -> Vec<FaultRun> {
    use socflow::config::{MethodSpec, SocFlowConfig, TrainJobSpec};
    use socflow::engine::Workload;
    use socflow::scheduler::GlobalScheduler;
    use socflow_cluster::faults::FaultPlan;
    use socflow_data::DatasetPreset;
    use socflow_nn::models::ModelKind;
    use socflow_telemetry::{Event, MemorySink};
    use std::sync::Arc;

    let (socs, groups, epochs, samples) = if fast {
        (8, 2, 2, 256)
    } else {
        (16, 4, 4, 512)
    };
    let job = || {
        let mut spec = TrainJobSpec::new(
            ModelKind::LeNet5,
            DatasetPreset::FashionMnist,
            MethodSpec::SocFlow(SocFlowConfig::with_groups(groups)),
        );
        spec.socs = socs;
        spec.epochs = epochs;
        spec.global_batch = 64;
        spec
    };
    let spec = job();
    let baseline = GlobalScheduler::new(spec, Workload::standard(&spec, samples, 8, 0.5)).run();
    let horizon = baseline.total_time();

    let mut out = vec![FaultRun {
        scenario: "baseline",
        reclaim_x: 0.0,
        crash_x: 0.0,
        faults_injected: 0,
        best_accuracy: baseline.best_accuracy() as f64,
        sim_time_s: horizon,
        recovery_s: baseline.recovery_time,
        energy_kj: baseline.energy_joules / 1e3,
    }];
    // intensities: mean inter-arrivals as multiples of the run length —
    // "calm" loses a SoC or two, "storm" sheds most of the cluster
    let scenarios: [(&'static str, f64, f64); 3] =
        [("calm", 4.0, 8.0), ("busy", 1.0, 2.0), ("storm", 0.25, 0.5)];
    for (name, reclaim_x, crash_x) in scenarios {
        let spec = job();
        let plan = FaultPlan::sample(
            socs,
            horizon,
            horizon * reclaim_x,
            horizon * crash_x,
            spec.seed,
        );
        let sink = Arc::new(MemorySink::new());
        let r = GlobalScheduler::new(spec, Workload::standard(&spec, samples, 8, 0.5))
            .with_fault_plan(plan)
            .with_sink(sink.clone())
            .run();
        let injected = sink
            .events()
            .iter()
            .filter(|e| matches!(e, Event::FaultInjected { .. }))
            .count() as u64;
        out.push(FaultRun {
            scenario: name,
            reclaim_x,
            crash_x,
            faults_injected: injected,
            best_accuracy: r.best_accuracy() as f64,
            sim_time_s: r.total_time(),
            recovery_s: r.recovery_time,
            energy_kj: r.energy_joules / 1e3,
        });
    }
    out
}

fn fault_suite_to_json(results: &[FaultRun], fast: bool) -> serde_json::Value {
    use serde_json::Value;
    let rows = results
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("scenario".into(), Value::Str(r.scenario.into())),
                ("reclaim_x".into(), Value::F64(r.reclaim_x)),
                ("crash_x".into(), Value::F64(r.crash_x)),
                ("faults_injected".into(), Value::U64(r.faults_injected)),
                ("best_accuracy".into(), Value::F64(r.best_accuracy)),
                ("sim_time_s".into(), Value::F64(r.sim_time_s)),
                ("recovery_s".into(), Value::F64(r.recovery_s)),
                ("energy_kj".into(), Value::F64(r.energy_kj)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("schema".into(), Value::Str("socflow-fault-bench/v1".into())),
        (
            "mode".into(),
            Value::Str(if fast { "fast" } else { "full" }.into()),
        ),
        ("results".into(), Value::Array(rows)),
    ])
}

/// One timeline-bench row: closed-form Eq. 1 pricing vs the event-driven
/// fluid timeline, with and without compute↔CG interleaving, at one
/// logical-group count.
struct TimelineRun {
    groups: usize,
    /// Logical groups whose SoCs span more than one board.
    split_lgs: usize,
    /// Communication groups after 2-coloring.
    cgs: usize,
    analytic_s: f64,
    /// Fluid timeline, CG syncs overlapping member compute (the paper's
    /// interleaved schedule).
    simulated_s: f64,
    /// Fluid timeline with the same CG slots but syncs strictly after
    /// compute — the no-interleaving comparator.
    no_overlap_s: f64,
    /// Fluid timeline with wait-free per-bucket gradient overlap at the
    /// default bucket size (buckets from all CGs contend concurrently).
    wait_free_s: f64,
}

impl TimelineRun {
    /// Simulated / analytic epoch time (1.0 = exact agreement).
    fn agreement(&self) -> f64 {
        if self.analytic_s > 0.0 {
            self.simulated_s / self.analytic_s
        } else {
            1.0
        }
    }

    /// No-overlap / interleaved epoch time (≥ 1.0 by construction).
    fn overlap_speedup(&self) -> f64 {
        if self.simulated_s > 0.0 {
            self.no_overlap_s / self.simulated_s
        } else {
            1.0
        }
    }

    /// No-overlap / wait-free epoch time (≥ `overlap_speedup` by
    /// construction: wait-free never loses to interleaving).
    fn wait_free_speedup(&self) -> f64 {
        if self.wait_free_s > 0.0 {
            self.no_overlap_s / self.wait_free_s
        } else {
            1.0
        }
    }
}

/// One bucket-size sweep row: the wait-free epoch time at one minimum
/// gradient-bucket size, on a fixed group count.
struct BucketSweepRun {
    bucket_kb: usize,
    /// Gradient buckets the VGG-11 layout coalesces into at this size.
    buckets: usize,
    wait_free_s: f64,
}

/// The reference gradient layout every timeline arm buckets: VGG-11 at
/// the standard 0.25 width used by the training workloads. The init seed
/// is irrelevant — only the per-layer parameter counts matter here.
fn vgg11_grad_layout() -> Vec<socflow_nn::GradReady> {
    use rand::{rngs::StdRng, SeedableRng};
    use socflow_nn::models::{ModelConfig, ModelKind};
    let mut rng = StdRng::seed_from_u64(0);
    ModelKind::Vgg11
        .build(ModelConfig::new(3, 32, 10, 0.25), &mut rng)
        .grad_layout()
}

/// Sweeps logical-group counts on one cluster and prices each epoch three
/// ways: the analytic Eq. 1 model, the fluid timeline with interleaving,
/// and the fluid timeline without it. Board-aligned counts (zero split
/// LGs) pin the simulator against the analytic model; counts with split
/// groups show what interleaving buys. Everything is simulated and
/// deterministic, so the numbers are machine-independent.
fn run_timeline_suite(fast: bool) -> Vec<TimelineRun> {
    use socflow::config::{MethodSpec, TrainJobSpec};
    use socflow::mapping::integrity_greedy;
    use socflow::planning::divide_communication_groups;
    use socflow::sim::{simulate_socflow_schedule, SyncSchedule};
    use socflow::timemodel::TimeModel;
    use socflow::GroupId;
    use socflow_cluster::ClusterSpec;
    use socflow_data::DatasetPreset;
    use socflow_nn::models::ModelKind;

    // the paper server is 60 SoCs; the fast smoke uses a 20-SoC slice
    let (socs, group_counts): (usize, &[usize]) = if fast {
        (20, &[2, 4, 7])
    } else {
        (60, &[1, 2, 4, 6, 8, 12, 20, 60])
    };
    let mut spec = TrainJobSpec::new(ModelKind::Vgg11, DatasetPreset::Cifar10, MethodSpec::Ring);
    spec.socs = socs;
    let mut tm = TimeModel::new(&spec);
    // the explicit-schedule arms ignore the overlap plan; only the
    // WaitFree arm reads it
    tm.set_overlap(socflow::timemodel::DEFAULT_BUCKET_KB, &vgg11_grad_layout());
    let cluster = ClusterSpec::for_socs(socs);
    group_counts
        .iter()
        .map(|&groups| {
            let mapping = integrity_greedy(&cluster, socs, groups);
            let split_lgs = (0..groups)
                .filter(|&g| mapping.is_split(GroupId(g)))
                .count();
            let cgs =
                divide_communication_groups(&mapping).expect("integrity-greedy mappings 2-color");
            let analytic = tm.socflow_epoch(&mapping, &cgs, true, 1.0);
            let interleaved = simulate_socflow_schedule(
                &tm,
                &mapping,
                &cgs,
                true,
                SyncSchedule::Interleaved,
                1.0,
            );
            let serial =
                simulate_socflow_schedule(&tm, &mapping, &cgs, true, SyncSchedule::Serial, 1.0);
            let wait_free =
                simulate_socflow_schedule(&tm, &mapping, &cgs, true, SyncSchedule::WaitFree, 1.0);
            TimelineRun {
                groups,
                split_lgs,
                cgs: cgs.len(),
                analytic_s: analytic.time,
                simulated_s: interleaved.cost.time,
                no_overlap_s: serial.cost.time,
                wait_free_s: wait_free.cost.time,
            }
        })
        .collect()
}

/// Sweeps the minimum bucket size on one fixed multi-CG group count and
/// prices each wait-free epoch: small buckets release transfers earliest
/// but fragment the payload into more per-bucket ring latencies, large
/// buckets degenerate toward the single-flush interleaved schedule.
fn run_bucket_sweep(fast: bool) -> (usize, Vec<BucketSweepRun>) {
    use socflow::config::{MethodSpec, TrainJobSpec};
    use socflow::mapping::integrity_greedy;
    use socflow::planning::divide_communication_groups;
    use socflow::sim::{simulate_socflow_schedule, SyncSchedule};
    use socflow::timemodel::TimeModel;
    use socflow_cluster::ClusterSpec;
    use socflow_data::DatasetPreset;
    use socflow_nn::models::ModelKind;

    // a group count whose mapping splits boards, so several CGs contend
    let (socs, groups) = if fast { (20, 7) } else { (60, 12) };
    // the autotuner's grid, so the sweep prices exactly the bucket sizes
    // the plan search considers
    let sizes_kb = socflow::autotune::BUCKET_GRID_KB;
    let mut spec = TrainJobSpec::new(ModelKind::Vgg11, DatasetPreset::Cifar10, MethodSpec::Ring);
    spec.socs = socs;
    let mut tm = TimeModel::new(&spec);
    let layout = vgg11_grad_layout();
    let cluster = ClusterSpec::for_socs(socs);
    let mapping = integrity_greedy(&cluster, socs, groups);
    let cgs = divide_communication_groups(&mapping).expect("integrity-greedy mappings 2-color");
    let runs = sizes_kb
        .iter()
        .map(|&bucket_kb| {
            tm.set_overlap(bucket_kb, &layout);
            let buckets = tm.overlap().map_or(1, |p| p.shares.len());
            let wait_free =
                simulate_socflow_schedule(&tm, &mapping, &cgs, true, SyncSchedule::WaitFree, 1.0);
            BucketSweepRun {
                bucket_kb,
                buckets,
                wait_free_s: wait_free.cost.time,
            }
        })
        .collect();
    (groups, runs)
}

/// Scratch-pool traffic observed while re-pricing a warm epoch: the
/// allocation-churn witness for the `TimelineScratch` free-list.
struct ScratchWitness {
    acquires: u64,
    misses: u64,
}

/// Prices one wait-free epoch twice on this thread and counts scratch-pool
/// traffic on the second (warm) pass. Every `FluidTimeline` the warm pass
/// creates must be served from the thread's free-list — `misses == 0` is
/// the witness that repeated pricing no longer allocates fresh scratch
/// buffers (task arenas, flow paths, carried-bytes ledgers).
fn run_scratch_witness(fast: bool) -> ScratchWitness {
    use socflow::config::{MethodSpec, TrainJobSpec};
    use socflow::mapping::integrity_greedy;
    use socflow::planning::divide_communication_groups;
    use socflow::sim::{simulate_socflow_schedule, SyncSchedule};
    use socflow::timemodel::TimeModel;
    use socflow_cluster::ClusterSpec;
    use socflow_data::DatasetPreset;
    use socflow_nn::models::ModelKind;

    let (socs, groups) = if fast { (20, 7) } else { (60, 12) };
    let mut spec = TrainJobSpec::new(ModelKind::Vgg11, DatasetPreset::Cifar10, MethodSpec::Ring);
    spec.socs = socs;
    let mut tm = TimeModel::new(&spec);
    tm.set_overlap(socflow::timemodel::DEFAULT_BUCKET_KB, &vgg11_grad_layout());
    let cluster = ClusterSpec::for_socs(socs);
    let mapping = integrity_greedy(&cluster, socs, groups);
    let cgs = divide_communication_groups(&mapping).expect("integrity-greedy mappings 2-color");
    // cold pass parks a scratch in this thread's pool
    simulate_socflow_schedule(&tm, &mapping, &cgs, true, SyncSchedule::WaitFree, 1.0);
    socflow_cluster::reset_scratch_stats();
    simulate_socflow_schedule(&tm, &mapping, &cgs, true, SyncSchedule::WaitFree, 1.0);
    let stats = socflow_cluster::scratch_stats();
    ScratchWitness {
        acquires: stats.acquires,
        misses: stats.misses,
    }
}

fn timeline_suite_to_json(
    results: &[TimelineRun],
    sweep_groups: usize,
    sweep: &[BucketSweepRun],
    scratch: &ScratchWitness,
    fast: bool,
    socs: usize,
) -> serde_json::Value {
    use serde_json::Value;
    let rows = results
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("groups".into(), Value::U64(r.groups as u64)),
                ("split_lgs".into(), Value::U64(r.split_lgs as u64)),
                ("cgs".into(), Value::U64(r.cgs as u64)),
                ("analytic_s".into(), Value::F64(r.analytic_s)),
                ("simulated_s".into(), Value::F64(r.simulated_s)),
                ("no_overlap_s".into(), Value::F64(r.no_overlap_s)),
                ("wait_free_s".into(), Value::F64(r.wait_free_s)),
                ("agreement".into(), Value::F64(r.agreement())),
                ("overlap_speedup".into(), Value::F64(r.overlap_speedup())),
                (
                    "wait_free_speedup".into(),
                    Value::F64(r.wait_free_speedup()),
                ),
            ])
        })
        .collect();
    let sweep_rows = sweep
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("bucket_kb".into(), Value::U64(r.bucket_kb as u64)),
                ("buckets".into(), Value::U64(r.buckets as u64)),
                ("wait_free_s".into(), Value::F64(r.wait_free_s)),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "schema".into(),
            Value::Str("socflow-timeline-bench/v3".into()),
        ),
        (
            "mode".into(),
            Value::Str(if fast { "fast" } else { "full" }.into()),
        ),
        ("socs".into(), Value::U64(socs as u64)),
        ("results".into(), Value::Array(rows)),
        (
            "bucket_sweep".into(),
            Value::Object(vec![
                ("groups".into(), Value::U64(sweep_groups as u64)),
                ("results".into(), Value::Array(sweep_rows)),
            ]),
        ),
        (
            "scratch_reuse".into(),
            Value::Object(vec![
                ("acquires".into(), Value::U64(scratch.acquires)),
                ("misses".into(), Value::U64(scratch.misses)),
            ]),
        ),
    ])
}

/// One end-to-end row: the wall-clock of a full training run (forward /
/// backward steps, sharded evaluation, replica aggregation) at one
/// worker-pool size, plus a reference 128³ GEMM at the same pool size.
struct E2eRun {
    threads: usize,
    /// Wall-clock seconds of one `GlobalScheduler::run()` (1 epoch).
    run_s: f64,
    /// Min-of-N time of a 128×128×128 `matmul` at this pool size.
    gemm_ns: f64,
    /// Sum of the run's epoch accuracies — the determinism witness: the
    /// runtime partitions work by problem shape, never by thread count,
    /// so this must be bitwise-identical on every row.
    digest: f64,
}

/// Runs the end-to-end suite: the same 1-epoch SoCFlow job (train step +
/// eval + aggregation — everything inside `Engine::run`) timed at pool
/// sizes 1, 2, 4 and all hardware threads. Unlike the simulated suites,
/// these are host wall-clock numbers and machine-dependent; the committed
/// baseline records one reference machine.
fn run_e2e_suite(fast: bool) -> Vec<E2eRun> {
    use socflow::config::{MethodSpec, SocFlowConfig, TrainJobSpec};
    use socflow::engine::Workload;
    use socflow::scheduler::GlobalScheduler;
    use socflow_data::DatasetPreset;
    use socflow_nn::models::ModelKind;
    use socflow_tensor::runtime;

    let (socs, groups, samples) = if fast { (4, 2, 256) } else { (8, 2, 2048) };
    let (iters, warmup) = if fast { (3, 1) } else { (20, 3) };
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut counts = vec![1, 2, 4, hw];
    counts.sort_unstable();
    counts.dedup();

    let (m, k, n) = (128, 128, 128);
    let a = tensor([m, k], 0x5eed_0101);
    let b = tensor([k, n], 0x5eed_0102);
    let mut c = Tensor::zeros([m, n]);

    let before = runtime::threads();
    let mut out = Vec::new();
    for &t in &counts {
        runtime::set_threads(t);
        let mut spec = TrainJobSpec::new(
            ModelKind::LeNet5,
            DatasetPreset::FashionMnist,
            MethodSpec::SocFlow(SocFlowConfig::with_groups(groups)),
        );
        spec.socs = socs;
        spec.epochs = 1;
        spec.global_batch = 64;
        // min-of-N over full runs: one epoch is tens of milliseconds on
        // the reference machine, too noisy for a single shot
        let reps = if fast { 1 } else { 3 };
        let mut run_s = f64::INFINITY;
        let mut digest = 0.0;
        for _ in 0..reps {
            let workload = Workload::standard(&spec, samples, 8, 0.5);
            let t0 = Instant::now();
            let r = GlobalScheduler::new(spec, workload).run();
            run_s = run_s.min(t0.elapsed().as_secs_f64());
            digest = r.epoch_accuracy.iter().map(|&x| f64::from(x)).sum();
        }
        let gemm_ns = time_min(iters, warmup, || {
            linalg::matmul_slices(a.data(), b.data(), c.data_mut(), m, k, n);
        });
        out.push(E2eRun {
            threads: t,
            run_s,
            gemm_ns,
            digest,
        });
    }
    runtime::set_threads(before);
    out
}

fn e2e_suite_to_json(results: &[E2eRun], fast: bool) -> serde_json::Value {
    use serde_json::Value;
    let base_run = results.first().map_or(0.0, |r| r.run_s);
    let base_gemm = results.first().map_or(0.0, |r| r.gemm_ns);
    let rows = results
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("threads".into(), Value::U64(r.threads as u64)),
                ("run_s".into(), Value::F64(r.run_s)),
                (
                    "run_speedup_vs_1t".into(),
                    Value::F64(if r.run_s > 0.0 {
                        base_run / r.run_s
                    } else {
                        0.0
                    }),
                ),
                ("gemm_ns_per_iter".into(), Value::F64(r.gemm_ns)),
                (
                    "gemm_speedup_vs_1t".into(),
                    Value::F64(if r.gemm_ns > 0.0 {
                        base_gemm / r.gemm_ns
                    } else {
                        0.0
                    }),
                ),
                ("accuracy_digest".into(), Value::F64(r.digest)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("schema".into(), Value::Str("socflow-e2e-bench/v1".into())),
        (
            "mode".into(),
            Value::Str(if fast { "fast" } else { "full" }.into()),
        ),
        (
            "host_threads".into(),
            Value::U64(
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1) as u64,
            ),
        ),
        ("results".into(), Value::Array(rows)),
    ])
}

/// Fleet-bench configuration shared by both policies so the comparison
/// runs on the *same* traced arrival schedule.
fn fleet_bench_config(fast: bool) -> (socflow::fleet::FleetSpec, usize, f64, u64) {
    use socflow::fleet::{FleetPolicy, FleetSpec};
    // Both schedules are contended enough that admission policy matters: the
    // fast tier packs 8 overnight arrivals onto two servers, the full tier
    // stretches 14 arrivals across five diurnal cycles of a single server so
    // FIFO's eager daytime placements pay real preemption/requeue costs.
    let (servers, jobs, horizon, interarrival, seed, mix_seed) = if fast {
        (2, 8, 48, 3600.0, 42, 7)
    } else {
        (1, 14, 120, 7200.0, 23, 29)
    };
    let spec = FleetSpec {
        servers,
        socs_per_server: 60,
        seed,
        horizon_hours: horizon,
        policy: FleetPolicy::Tidal,
    };
    (spec, jobs, interarrival, mix_seed)
}

fn run_fleet_suite(fast: bool) -> Vec<socflow::fleet::FleetReport> {
    use socflow::fleet::{standard_job_mix, FleetPolicy, FleetSim};
    let (base, jobs, interarrival, mix_seed) = fleet_bench_config(fast);
    [FleetPolicy::Fifo, FleetPolicy::Tidal]
        .into_iter()
        .map(|policy| {
            let spec = socflow::fleet::FleetSpec { policy, ..base };
            FleetSim::new(spec, standard_job_mix(jobs, interarrival, mix_seed)).run()
        })
        .collect()
}

fn fleet_suite_to_json(results: &[socflow::fleet::FleetReport], fast: bool) -> serde_json::Value {
    use serde_json::Value;
    let (base, jobs, interarrival, mix_seed) = fleet_bench_config(fast);
    let rows = results
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("policy".into(), Value::Str(r.policy.clone())),
                ("completed".into(), Value::U64(r.completed as u64)),
                ("preemptions".into(), Value::U64(r.preemptions as u64)),
                ("mean_jct_s".into(), Value::F64(r.mean_jct_s)),
                ("utilization".into(), Value::F64(r.utilization)),
                (
                    "idle_capacity_used".into(),
                    Value::F64(r.idle_capacity_used),
                ),
                (
                    "throughput_jobs_per_day".into(),
                    Value::F64(r.throughput_jobs_per_day),
                ),
            ])
        })
        .collect();
    let fifo = results.iter().find(|r| r.policy == "fifo");
    let tidal = results.iter().find(|r| r.policy == "tidal");
    let (jct_x, util_gain) = match (fifo, tidal) {
        (Some(f), Some(t)) if t.mean_jct_s > 0.0 => {
            (f.mean_jct_s / t.mean_jct_s, t.utilization - f.utilization)
        }
        _ => (0.0, 0.0),
    };
    Value::Object(vec![
        ("schema".into(), Value::Str("socflow-fleet-bench/v1".into())),
        (
            "mode".into(),
            Value::Str(if fast { "fast" } else { "full" }.into()),
        ),
        ("servers".into(), Value::U64(base.servers as u64)),
        (
            "socs_per_server".into(),
            Value::U64(base.socs_per_server as u64),
        ),
        ("jobs".into(), Value::U64(jobs as u64)),
        (
            "horizon_hours".into(),
            Value::U64(base.horizon_hours as u64),
        ),
        ("interarrival_s".into(), Value::F64(interarrival)),
        ("seed".into(), Value::U64(base.seed)),
        ("mix_seed".into(), Value::U64(mix_seed)),
        ("jct_speedup_vs_fifo".into(), Value::F64(jct_x)),
        ("utilization_gain_vs_fifo".into(), Value::F64(util_gain)),
        ("results".into(), Value::Array(rows)),
    ])
}

fn bench_fleet(fast: bool, json_path: Option<String>) -> Result<(), String> {
    let results = run_fleet_suite(fast);
    println!(
        "{:<8} {:>9} {:>10} {:>12} {:>12} {:>10} {:>9}",
        "policy", "completed", "preempts", "mean JCT s", "util %", "idle %", "jobs/day"
    );
    for r in &results {
        println!(
            "{:<8} {:>9} {:>10} {:>12.0} {:>11.1}% {:>9.1}% {:>9.2}",
            r.policy,
            r.completed,
            r.preemptions,
            r.mean_jct_s,
            r.utilization * 100.0,
            r.idle_capacity_used * 100.0,
            r.throughput_jobs_per_day
        );
    }
    if let Some(path) = json_path {
        let doc = fleet_suite_to_json(&results, fast);
        let text = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(&path, text + "\n")
            .map_err(|e| format!("cannot write bench file `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn bench_e2e(fast: bool, json_path: Option<String>) -> Result<(), String> {
    let results = run_e2e_suite(fast);
    let base_run = results.first().map_or(0.0, |r| r.run_s);
    let base_gemm = results.first().map_or(0.0, |r| r.gemm_ns);
    println!(
        "{:<8} {:>9} {:>8} {:>13} {:>13} {:>13}",
        "threads", "run s", "speedup", "gemm ns/iter", "gemm speedup", "acc digest"
    );
    for r in &results {
        println!(
            "{:<8} {:>9.2} {:>7.2}x {:>13.0} {:>12.2}x {:>13.6}",
            r.threads,
            r.run_s,
            if r.run_s > 0.0 {
                base_run / r.run_s
            } else {
                0.0
            },
            r.gemm_ns,
            if r.gemm_ns > 0.0 {
                base_gemm / r.gemm_ns
            } else {
                0.0
            },
            r.digest
        );
    }
    if let Some(path) = json_path {
        let doc = e2e_suite_to_json(&results, fast);
        let text = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(&path, text + "\n")
            .map_err(|e| format!("cannot write bench file `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn bench_timeline(fast: bool, json_path: Option<String>) -> Result<(), String> {
    let socs = if fast { 20 } else { 60 };
    let results = run_timeline_suite(fast);
    let (sweep_groups, sweep) = run_bucket_sweep(fast);
    println!(
        "{:<7} {:>6} {:>4} {:>12} {:>12} {:>13} {:>11} {:>10} {:>8} {:>8}",
        "groups",
        "split",
        "cgs",
        "analytic s",
        "simulated s",
        "no-overlap s",
        "wait-free s",
        "agreement",
        "speedup",
        "wf spdup"
    );
    for r in &results {
        println!(
            "{:<7} {:>6} {:>4} {:>12.1} {:>12.1} {:>13.1} {:>11.1} {:>10.4} {:>8.3} {:>8.3}",
            r.groups,
            r.split_lgs,
            r.cgs,
            r.analytic_s,
            r.simulated_s,
            r.no_overlap_s,
            r.wait_free_s,
            r.agreement(),
            r.overlap_speedup(),
            r.wait_free_speedup()
        );
    }
    println!("\nbucket-size sweep ({sweep_groups} groups, wait-free)");
    println!(
        "{:<10} {:>8} {:>12}",
        "bucket KiB", "buckets", "wait-free s"
    );
    for r in &sweep {
        println!(
            "{:<10} {:>8} {:>12.1}",
            r.bucket_kb, r.buckets, r.wait_free_s
        );
    }
    let scratch = run_scratch_witness(fast);
    println!(
        "\nscratch reuse: {} acquires, {} pool misses on the warm pass",
        scratch.acquires, scratch.misses
    );
    if scratch.misses != 0 {
        return Err(format!(
            "warm re-pricing allocated {} fresh TimelineScratch(es); the free-list should serve all {} acquires",
            scratch.misses, scratch.acquires
        ));
    }
    if let Some(path) = json_path {
        let doc = timeline_suite_to_json(&results, sweep_groups, &sweep, &scratch, fast, socs);
        let text = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(&path, text + "\n")
            .map_err(|e| format!("cannot write bench file `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn bench_faults(fast: bool, json_path: Option<String>) -> Result<(), String> {
    let results = run_fault_suite(fast);
    println!(
        "{:<10} {:>10} {:>8} {:>7} {:>9} {:>11} {:>10} {:>10}",
        "scenario",
        "reclaim_x",
        "crash_x",
        "faults",
        "best acc",
        "sim time s",
        "recovery s",
        "energy kJ"
    );
    for r in &results {
        println!(
            "{:<10} {:>10.2} {:>8.2} {:>7} {:>8.1}% {:>11.0} {:>10.1} {:>10.1}",
            r.scenario,
            r.reclaim_x,
            r.crash_x,
            r.faults_injected,
            r.best_accuracy * 100.0,
            r.sim_time_s,
            r.recovery_s,
            r.energy_kj
        );
    }
    if let Some(path) = json_path {
        let doc = fault_suite_to_json(&results, fast);
        let text = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(&path, text + "\n")
            .map_err(|e| format!("cannot write bench file `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// One streaming-bench arm: a stream-rate profile crossed with rate-aware
/// vs topology-only grouping, measured by time-to-accuracy on the priced
/// simulated clock.
struct StreamingRun {
    profile: &'static str,
    rate_aware: bool,
    best_accuracy: f64,
    time_to_acc_s: Option<f64>,
    sim_time_s: f64,
    stall_s: f64,
    dropped: u64,
    regroups: u64,
}

/// Runs the streaming-ingestion experiment: uniform vs heterogeneous
/// per-SoC stream rates, each with rate-aware regrouping on and off.
/// The shared accuracy target is 80% of the weakest arm's best accuracy,
/// so every arm's time-to-accuracy is defined and comparable. Returns the
/// four arms plus that target. Everything is simulated and seeded, so the
/// numbers are machine-independent.
fn run_streaming_suite(fast: bool) -> (Vec<StreamingRun>, f64) {
    use socflow::config::{MethodSpec, SocFlowConfig, StreamingConfig, TrainJobSpec};
    use socflow::engine::Workload;
    use socflow::scheduler::GlobalScheduler;
    use socflow_data::stream::RateProfile;
    use socflow_data::DatasetPreset;
    use socflow_nn::models::ModelKind;
    use socflow_telemetry::{MemorySink, Summary};
    use std::sync::Arc;

    let (socs, groups, epochs, samples) = streaming_suite_shape(fast);
    let arms: [(&'static str, RateProfile, bool); 4] = [
        ("uniform", RateProfile::Uniform, false),
        ("uniform", RateProfile::Uniform, true),
        ("hetero", RateProfile::Heterogeneous, false),
        ("hetero", RateProfile::Heterogeneous, true),
    ];
    let mut runs = Vec::new();
    for (name, profile, rate_aware) in arms {
        let mut spec = TrainJobSpec::new(
            ModelKind::LeNet5,
            DatasetPreset::FashionMnist,
            MethodSpec::SocFlow(SocFlowConfig::with_groups(groups)),
        );
        spec.socs = socs;
        spec.epochs = epochs;
        spec.global_batch = 32;
        let mut scfg = StreamingConfig::new(profile);
        scfg.rate_aware = rate_aware;
        let sink = Arc::new(MemorySink::new());
        let r = GlobalScheduler::new(spec, Workload::standard(&spec, samples, 8, 0.5))
            .with_streaming(scfg)
            .with_sink(sink.clone())
            .run();
        let s = Summary::from_events(&sink.events());
        runs.push((r, s, name, rate_aware));
    }
    let target = 0.8
        * runs
            .iter()
            .map(|(r, ..)| r.best_accuracy())
            .fold(f32::INFINITY, f32::min);
    let out = runs
        .into_iter()
        .map(|(r, s, profile, rate_aware)| StreamingRun {
            profile,
            rate_aware,
            best_accuracy: r.best_accuracy() as f64,
            time_to_acc_s: r.time_to_accuracy(target),
            sim_time_s: r.total_time(),
            stall_s: s.stream_stall_cost,
            dropped: s.samples_dropped,
            regroups: s.rate_regroups as u64,
        })
        .collect();
    (out, target as f64)
}

/// (socs, groups, epochs, samples) for the streaming suite's two tiers.
/// Groups of two leave within-board freedom for the rate-aware refill.
fn streaming_suite_shape(fast: bool) -> (usize, usize, usize, usize) {
    if fast {
        (8, 4, 3, 256)
    } else {
        (16, 8, 4, 512)
    }
}

fn streaming_suite_to_json(results: &[StreamingRun], target: f64, fast: bool) -> serde_json::Value {
    use serde_json::Value;
    let (socs, groups, epochs, samples) = streaming_suite_shape(fast);
    let rows = results
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("profile".into(), Value::Str(r.profile.into())),
                ("rate_aware".into(), Value::Bool(r.rate_aware)),
                ("best_accuracy".into(), Value::F64(r.best_accuracy)),
                (
                    "time_to_acc_s".into(),
                    r.time_to_acc_s.map_or(Value::Null, Value::F64),
                ),
                ("sim_time_s".into(), Value::F64(r.sim_time_s)),
                ("stall_s".into(), Value::F64(r.stall_s)),
                ("samples_dropped".into(), Value::U64(r.dropped)),
                ("rate_regroups".into(), Value::U64(r.regroups)),
            ])
        })
        .collect();
    let tta = |profile: &str, aware: bool| {
        results
            .iter()
            .find(|r| r.profile == profile && r.rate_aware == aware)
            .and_then(|r| r.time_to_acc_s)
    };
    let speedup = match (tta("hetero", false), tta("hetero", true)) {
        (Some(blind), Some(aware)) if aware > 0.0 => blind / aware,
        _ => 0.0,
    };
    Value::Object(vec![
        (
            "schema".into(),
            Value::Str("socflow-streaming-bench/v1".into()),
        ),
        (
            "mode".into(),
            Value::Str(if fast { "fast" } else { "full" }.into()),
        ),
        ("socs".into(), Value::U64(socs as u64)),
        ("groups".into(), Value::U64(groups as u64)),
        ("epochs".into(), Value::U64(epochs as u64)),
        ("samples".into(), Value::U64(samples as u64)),
        ("global_batch".into(), Value::U64(32)),
        ("target_accuracy".into(), Value::F64(target)),
        ("hetero_tta_speedup_vs_topology".into(), Value::F64(speedup)),
        ("results".into(), Value::Array(rows)),
    ])
}

fn bench_streaming(fast: bool, json_path: Option<String>) -> Result<(), String> {
    let (results, target) = run_streaming_suite(fast);
    println!(
        "target accuracy {:.1}% (80% of weakest arm)",
        target * 100.0
    );
    println!(
        "{:<8} {:<10} {:>9} {:>14} {:>11} {:>9} {:>8} {:>9}",
        "profile",
        "grouping",
        "best acc",
        "time-to-acc s",
        "sim time s",
        "stall s",
        "dropped",
        "regroups"
    );
    for r in &results {
        let tta = r
            .time_to_acc_s
            .map_or_else(|| "never".to_string(), |t| format!("{t:.1}"));
        println!(
            "{:<8} {:<10} {:>8.1}% {:>14} {:>11.1} {:>9.1} {:>8} {:>9}",
            r.profile,
            if r.rate_aware { "rate" } else { "topology" },
            r.best_accuracy * 100.0,
            tta,
            r.sim_time_s,
            r.stall_s,
            r.dropped,
            r.regroups
        );
    }
    if let Some(path) = json_path {
        let doc = streaming_suite_to_json(&results, target, fast);
        let text = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(&path, text + "\n")
            .map_err(|e| format!("cannot write bench file `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// One autotune-bench row: the plan search for one model family on the
/// bench server, the default plan's predicted epoch seconds against the
/// tuned winner's.
struct AutotuneRun {
    /// Row label: the model family, `-pbeta` suffixed when the profiled-β
    /// axis was searched.
    arm: &'static str,
    model: &'static str,
    /// Profiled β supplied to the search (`None` = calibrated only).
    profiled_beta_in: Option<f64>,
    /// CGs of the *default* plan's topology (≥ 2 = multi-CG config).
    default_cgs: usize,
    default: socflow::autotune::PlanChoice,
    best: socflow::autotune::PlanChoice,
    evaluated: usize,
    pruned: usize,
    skipped: usize,
    /// Predicted default-plan / best-plan epoch-time ratio (≥ 1).
    speedup: f64,
}

/// Runs the plan-space search for the three bundled model families (plus
/// a profiled-β arm) on the bench server and reports tuned-vs-default
/// predicted epoch seconds. Entirely on the simulated clock: the rows are
/// machine-independent and bit-identical at any worker-pool size.
fn run_autotune_suite(fast: bool) -> (usize, Vec<AutotuneRun>) {
    use rand::{rngs::StdRng, SeedableRng};
    use socflow::autotune::{autotune, default_candidate, TuneOptions};
    use socflow::config::{MethodSpec, SocFlowConfig, TrainJobSpec};
    use socflow::mapping::integrity_greedy;
    use socflow::planning::divide_communication_groups;
    use socflow_cluster::ClusterSpec;
    use socflow_data::DatasetPreset;
    use socflow_nn::models::{ModelConfig, ModelKind};

    // the paper server is 60 SoCs, where the hand-set 8-group plan maps
    // to a multi-CG topology; the fast smoke uses a 20-SoC slice, where
    // 7 groups is the multi-CG count (as in the timeline suite's sweep)
    let (socs, default_groups) = if fast { (20, 7) } else { (60, 8) };
    // the β that bench kernels measured on the reference machine
    let arms: &[(&str, ModelKind, &str, f32, Option<f64>)] = &[
        ("vgg11", ModelKind::Vgg11, "vgg11", 0.22, None),
        ("resnet18", ModelKind::ResNet18, "resnet18", 0.18, None),
        ("mobilenet", ModelKind::MobileNetV1, "mobilenet", 0.22, None),
        ("vgg11-pbeta", ModelKind::Vgg11, "vgg11", 0.22, Some(0.2502)),
    ];
    let rows = arms
        .iter()
        .map(|&(arm, model, name, width, pbeta)| {
            // the paper's hand-set plan: fixed groups, interleaved sync
            let mut spec = TrainJobSpec::new(
                model,
                DatasetPreset::Cifar10,
                MethodSpec::SocFlow(SocFlowConfig::with_groups(default_groups)),
            );
            spec.socs = socs;
            let layout = model
                .build(
                    ModelConfig::new(3, 32, 10, width),
                    &mut StdRng::seed_from_u64(0),
                )
                .grad_layout();
            let opts = TuneOptions {
                budget: None,
                profiled_beta: pbeta,
                max_groups: None,
            };
            let report = autotune(&spec, &layout, &opts);
            let dflt = default_candidate(&spec);
            let cluster = ClusterSpec::for_socs(socs);
            let mapping = integrity_greedy(&cluster, socs, dflt.groups);
            let default_cgs =
                divide_communication_groups(&mapping).map_or(dflt.groups, |c| c.len());
            AutotuneRun {
                arm,
                model: name,
                profiled_beta_in: pbeta,
                default_cgs,
                default: report.default_plan,
                best: report.best(),
                evaluated: report.evaluated,
                pruned: report.pruned,
                skipped: report.skipped,
                speedup: report.speedup(),
            }
        })
        .collect();
    (socs, rows)
}

fn autotune_plan_json(c: &socflow::autotune::PlanChoice) -> serde_json::Value {
    use serde_json::Value;
    Value::Object(vec![
        ("groups".into(), Value::U64(c.candidate.groups as u64)),
        (
            "schedule".into(),
            Value::Str(c.candidate.schedule_name().into()),
        ),
        (
            "bucket_kb".into(),
            match c.candidate.bucket_kb {
                Some(kb) => Value::U64(kb as u64),
                None => Value::Null,
            },
        ),
        (
            "profiled_beta".into(),
            match c.candidate.profiled_beta {
                Some(b) => Value::F64(b),
                None => Value::Null,
            },
        ),
        ("predicted_s".into(), Value::F64(c.predicted_s)),
    ])
}

fn autotune_suite_to_json(results: &[AutotuneRun], fast: bool, socs: usize) -> serde_json::Value {
    use serde_json::Value;
    let rows = results
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("arm".into(), Value::Str(r.arm.into())),
                ("model".into(), Value::Str(r.model.into())),
                (
                    "profiled_beta_in".into(),
                    match r.profiled_beta_in {
                        Some(b) => Value::F64(b),
                        None => Value::Null,
                    },
                ),
                ("default_cgs".into(), Value::U64(r.default_cgs as u64)),
                ("default".into(), autotune_plan_json(&r.default)),
                ("best".into(), autotune_plan_json(&r.best)),
                ("evaluated".into(), Value::U64(r.evaluated as u64)),
                ("pruned".into(), Value::U64(r.pruned as u64)),
                ("skipped".into(), Value::U64(r.skipped as u64)),
                ("speedup".into(), Value::F64(r.speedup)),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "schema".into(),
            Value::Str("socflow-autotune-bench/v1".into()),
        ),
        (
            "mode".into(),
            Value::Str(if fast { "fast" } else { "full" }.into()),
        ),
        ("socs".into(), Value::U64(socs as u64)),
        (
            "budget".into(),
            Value::U64(socflow::autotune::DEFAULT_BUDGET as u64),
        ),
        ("results".into(), Value::Array(rows)),
    ])
}

fn bench_autotune(fast: bool, json_path: Option<String>) -> Result<(), String> {
    let (socs, results) = run_autotune_suite(fast);
    let dg = results.first().map_or(0, |r| r.default.candidate.groups);
    println!("plan autotuner vs the hand-set default ({dg} groups, interleaved) on {socs} SoCs");
    println!(
        "{:<12} {:>4} {:>11} {:>7} {:>11} {:>8} {:>11} {:>8} {:>5}/{:<5} {:>5}",
        "arm",
        "cgs",
        "default s",
        "groups",
        "schedule",
        "bucket",
        "tuned s",
        "speedup",
        "eval",
        "prune",
        "skip"
    );
    for r in &results {
        println!(
            "{:<12} {:>4} {:>11.1} {:>7} {:>11} {:>8} {:>11.1} {:>7.2}x {:>5}/{:<5} {:>5}",
            r.arm,
            r.default_cgs,
            r.default.predicted_s,
            r.best.candidate.groups,
            r.best.candidate.schedule_name(),
            r.best
                .candidate
                .bucket_kb
                .map_or("-".to_string(), |kb| format!("{kb}K")),
            r.best.predicted_s,
            r.speedup,
            r.evaluated,
            r.pruned,
            r.skipped
        );
    }
    // the suite's acceptance bar: the search must beat the hand-set plan
    // by ≥ 1.05× on at least one multi-CG config
    if !results
        .iter()
        .any(|r| r.default_cgs >= 2 && r.speedup >= 1.05)
    {
        return Err("no multi-CG arm reached the 1.05x tuned-vs-default bar".into());
    }
    if let Some(path) = json_path {
        let doc = autotune_suite_to_json(&results, fast, socs);
        let text = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(&path, text + "\n")
            .map_err(|e| format!("cannot write bench file `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// `socflow-cli bench <kernels|faults|timeline|e2e|fleet|streaming|autotune> [--fast] [--json <path>]`.
///
/// # Errors
/// Returns a message on unknown operands or an unwritable `--json` path.
pub fn bench(argv: &[String]) -> Result<(), String> {
    let usage = "usage: socflow-cli bench <kernels|faults|timeline|e2e|fleet|streaming|autotune> [--fast] [--json <path>]";
    let mut it = argv.iter();
    let suite = match it.next().map(String::as_str) {
        Some(
            s @ ("kernels" | "faults" | "timeline" | "e2e" | "fleet" | "streaming" | "autotune"),
        ) => s.to_string(),
        _ => return Err(usage.into()),
    };
    let mut fast = false;
    let mut json_path: Option<String> = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--fast" => fast = true,
            "--json" => {
                json_path = Some(it.next().cloned().ok_or("`--json` needs a path")?);
            }
            other => return Err(format!("unknown bench flag `{other}`\n{usage}")),
        }
    }
    if suite == "faults" {
        return bench_faults(fast, json_path);
    }
    if suite == "timeline" {
        return bench_timeline(fast, json_path);
    }
    if suite == "e2e" {
        return bench_e2e(fast, json_path);
    }
    if suite == "fleet" {
        return bench_fleet(fast, json_path);
    }
    if suite == "streaming" {
        return bench_streaming(fast, json_path);
    }
    if suite == "autotune" {
        return bench_autotune(fast, json_path);
    }

    let results = run_suite(fast);
    println!(
        "{:<16} {:<18} {:>6} {:>12} {:>9}",
        "op", "shape", "iters", "ns/iter", "GFLOP/s"
    );
    for r in &results {
        println!(
            "{:<16} {:<18} {:>6} {:>12.0} {:>9.3}",
            r.op,
            r.shape,
            r.iters,
            r.ns_per_iter,
            r.gflops()
        );
    }
    if let Some(beta) = measured_beta(&results) {
        println!("\nmeasured beta = {beta:.4} (f32 vs i8 GEMM at 128x128x128; feed back via `train --profiled-beta {beta:.4}`)");
    }
    if let Some(path) = json_path {
        let doc = to_json(&results, fast);
        let text = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(&path, text + "\n")
            .map_err(|e| format!("cannot write bench file `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_suite_runs_and_serializes() {
        let results = run_suite(true);
        assert!(results.len() >= 9, "suite covers every kernel family");
        for r in &results {
            assert!(r.ns_per_iter.is_finite() && r.ns_per_iter > 0.0, "{}", r.op);
            assert!(r.gflops() > 0.0, "{}", r.op);
        }
        assert_eq!(
            results.iter().filter(|r| r.op == "matmul_i8").count(),
            2,
            "integer GEMM rows at both shapes"
        );
        let beta = measured_beta(&results).expect("128³ pair present");
        assert!(beta > 0.0 && beta < 1.0, "beta {beta}");
        let doc = to_json(&results, true);
        assert_eq!(doc.get("schema").as_str(), Some("socflow-kernel-bench/v1"));
        assert_eq!(doc.get("mode").as_str(), Some("fast"));
        assert_eq!(doc.get("profiled_beta").as_f64(), Some(beta));
        assert_eq!(doc.get("results").as_array().unwrap().len(), results.len());
    }

    #[test]
    fn bench_rejects_bad_operands() {
        let args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert!(bench(&args(&[])).is_err());
        assert!(bench(&args(&["cache"])).is_err());
        assert!(bench(&args(&["kernels", "--json"])).is_err());
        assert!(bench(&args(&["kernels", "--turbo"])).is_err());
        assert!(bench(&args(&["faults", "--turbo"])).is_err());
    }

    #[test]
    fn fast_fleet_suite_beats_fifo_and_serializes() {
        let results = run_fleet_suite(true);
        assert_eq!(results.len(), 2, "fifo then tidal");
        let fifo = &results[0];
        let tidal = &results[1];
        assert_eq!(fifo.policy, "fifo");
        assert_eq!(tidal.policy, "tidal");
        assert!(fifo.completed > 0 && tidal.completed > 0);
        // the acceptance bar: the fleet policy wins on JCT and utilization
        assert!(
            tidal.mean_jct_s < fifo.mean_jct_s,
            "tidal JCT {} vs fifo {}",
            tidal.mean_jct_s,
            fifo.mean_jct_s
        );
        assert!(
            tidal.utilization > fifo.utilization,
            "tidal util {} vs fifo {}",
            tidal.utilization,
            fifo.utilization
        );
        let doc = fleet_suite_to_json(&results, true);
        assert_eq!(doc.get("schema").as_str(), Some("socflow-fleet-bench/v1"));
        assert_eq!(doc.get("mode").as_str(), Some("fast"));
        assert_eq!(doc.get("results").as_array().unwrap().len(), 2);
        assert!(doc.get("jct_speedup_vs_fifo").as_f64().unwrap() > 1.0);
        assert!(doc.get("utilization_gain_vs_fifo").as_f64().unwrap() > 0.0);
        let row = &doc.get("results").as_array().unwrap()[0];
        for key in [
            "policy",
            "completed",
            "preemptions",
            "mean_jct_s",
            "utilization",
            "idle_capacity_used",
            "throughput_jobs_per_day",
        ] {
            assert!(!row.get(key).is_null(), "missing field {key}");
        }
    }

    #[test]
    fn fast_autotune_suite_beats_the_default_and_serializes() {
        let (socs, results) = run_autotune_suite(true);
        assert_eq!(socs, 20);
        assert_eq!(results.len(), 4, "three families + the profiled-β arm");
        for r in &results {
            assert!(
                r.default.predicted_s > 0.0 && r.best.predicted_s > 0.0,
                "{}",
                r.arm
            );
            // the search never returns a plan predicted slower than default
            assert!(
                r.best.predicted_s <= r.default.predicted_s,
                "{}: best {} vs default {}",
                r.arm,
                r.best.predicted_s,
                r.default.predicted_s
            );
            assert!(r.evaluated > 0, "{}", r.arm);
        }
        // the acceptance bar, on the fast slice too: ≥1.05x on a multi-CG
        // default config
        assert!(
            results
                .iter()
                .any(|r| r.default_cgs >= 2 && r.speedup >= 1.05),
            "no multi-CG arm reached 1.05x"
        );
        let doc = autotune_suite_to_json(&results, true, socs);
        assert_eq!(
            doc.get("schema").as_str(),
            Some("socflow-autotune-bench/v1")
        );
        assert_eq!(doc.get("mode").as_str(), Some("fast"));
        assert_eq!(doc.get("results").as_array().unwrap().len(), 4);
        let row = &doc.get("results").as_array().unwrap()[0];
        for key in [
            "arm",
            "model",
            "default_cgs",
            "default",
            "best",
            "evaluated",
            "pruned",
            "skipped",
            "speedup",
        ] {
            assert!(!row.get(key).is_null(), "missing field {key}");
        }
        assert!(row.get("speedup").as_f64().unwrap() >= 1.0);
    }

    #[test]
    fn autotune_suite_is_byte_deterministic() {
        let (socs, a) = run_autotune_suite(true);
        let (_, b) = run_autotune_suite(true);
        let ja = serde_json::to_string_pretty(&autotune_suite_to_json(&a, true, socs)).unwrap();
        let jb = serde_json::to_string_pretty(&autotune_suite_to_json(&b, true, socs)).unwrap();
        assert_eq!(ja, jb);
    }

    #[test]
    fn fleet_suite_is_byte_deterministic() {
        let a = serde_json::to_string_pretty(&fleet_suite_to_json(&run_fleet_suite(true), true))
            .unwrap();
        let b = serde_json::to_string_pretty(&fleet_suite_to_json(&run_fleet_suite(true), true))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fast_fault_suite_runs_and_serializes() {
        let results = run_fault_suite(true);
        assert_eq!(results.len(), 4, "baseline + three intensities");
        assert_eq!(results[0].scenario, "baseline");
        assert_eq!(results[0].recovery_s, 0.0);
        // the storm scenario must actually lose SoCs
        assert!(
            results.last().unwrap().faults_injected > 0,
            "storm must inject faults"
        );
        for r in &results {
            assert!(
                r.best_accuracy > 0.0 && r.sim_time_s > 0.0,
                "{}",
                r.scenario
            );
        }
        let doc = fault_suite_to_json(&results, true);
        assert_eq!(doc.get("schema").as_str(), Some("socflow-fault-bench/v1"));
        assert_eq!(doc.get("results").as_array().unwrap().len(), results.len());
    }

    #[test]
    fn fast_timeline_suite_runs_and_serializes() {
        let results = run_timeline_suite(true);
        assert_eq!(results.len(), 3);
        assert!(
            results.iter().any(|r| r.split_lgs > 0),
            "the sweep must include a split-LG count"
        );
        for r in &results {
            assert!(r.analytic_s > 0.0 && r.simulated_s > 0.0, "{}", r.groups);
            // interleaving never loses to the serial schedule
            assert!(
                r.simulated_s <= r.no_overlap_s + 1e-9,
                "{} groups: simulated {} vs no-overlap {}",
                r.groups,
                r.simulated_s,
                r.no_overlap_s
            );
            // wait-free never loses to serial or to interleaving, on
            // every config (the overlap property, not a lucky sample)
            let eps = 1e-6 * r.no_overlap_s;
            assert!(
                r.wait_free_s <= r.no_overlap_s + eps,
                "{} groups: wait-free {} vs serial {}",
                r.groups,
                r.wait_free_s,
                r.no_overlap_s
            );
            assert!(
                r.wait_free_s <= r.simulated_s + eps,
                "{} groups: wait-free {} vs interleaved {}",
                r.groups,
                r.wait_free_s,
                r.simulated_s
            );
            // board-aligned counts reproduce the analytic model within 1%
            if r.split_lgs == 0 {
                let rel = (r.analytic_s - r.simulated_s).abs() / r.analytic_s;
                assert!(rel < 0.01, "{} groups: rel {rel}", r.groups);
            }
        }
        // at least one multi-CG config must gain from bucketing over
        // plain interleaving (the acceptance bar for the wait-free arm)
        assert!(
            results
                .iter()
                .any(|r| r.cgs > 1 && r.wait_free_speedup() > r.overlap_speedup() + 1e-9),
            "no multi-CG config gained from wait-free bucketing"
        );
        let (sweep_groups, sweep) = run_bucket_sweep(true);
        assert_eq!(sweep_groups, 7);
        assert_eq!(sweep.len(), 4);
        for w in sweep.windows(2) {
            assert!(w[0].bucket_kb < w[1].bucket_kb);
            assert!(
                w[0].buckets >= w[1].buckets,
                "smaller buckets cannot coalesce fewer: {} KiB → {} vs {} KiB → {}",
                w[0].bucket_kb,
                w[0].buckets,
                w[1].bucket_kb,
                w[1].buckets
            );
        }
        assert!(
            sweep[0].buckets > 1,
            "the 512 KiB floor must split VGG-11 into multiple buckets"
        );
        for r in &sweep {
            assert!(r.wait_free_s > 0.0, "{} KiB", r.bucket_kb);
        }
        let scratch = run_scratch_witness(true);
        assert!(scratch.acquires > 0, "the warm pass builds timelines");
        assert_eq!(
            scratch.misses, 0,
            "warm re-pricing must serve every scratch from the free-list"
        );
        let doc = timeline_suite_to_json(&results, sweep_groups, &sweep, &scratch, true, 20);
        assert_eq!(
            doc.get("schema").as_str(),
            Some("socflow-timeline-bench/v3")
        );
        assert_eq!(doc.get("mode").as_str(), Some("fast"));
        assert_eq!(doc.get("results").as_array().unwrap().len(), results.len());
        let sweep_doc = doc.get("bucket_sweep");
        assert_eq!(sweep_doc.get("groups").as_u64(), Some(7));
        assert_eq!(
            sweep_doc.get("results").as_array().unwrap().len(),
            sweep.len()
        );
        assert_eq!(doc.get("scratch_reuse").get("misses").as_u64(), Some(0));
    }

    #[test]
    fn fast_e2e_suite_runs_and_serializes() {
        let results = run_e2e_suite(true);
        assert!(results.len() >= 2, "at least pool sizes 1 and 2");
        assert_eq!(results[0].threads, 1, "first row is the 1-thread base");
        for r in &results {
            assert!(r.run_s > 0.0 && r.gemm_ns > 0.0, "{} threads", r.threads);
            // determinism witness: identical trajectory at every pool size
            assert_eq!(
                r.digest.to_bits(),
                results[0].digest.to_bits(),
                "accuracy digest must be bitwise thread-count-invariant"
            );
        }
        let doc = e2e_suite_to_json(&results, true);
        assert_eq!(doc.get("schema").as_str(), Some("socflow-e2e-bench/v1"));
        assert_eq!(doc.get("mode").as_str(), Some("fast"));
        assert_eq!(doc.get("results").as_array().unwrap().len(), results.len());
    }

    #[test]
    fn fast_streaming_suite_rate_awareness_wins_and_serializes() {
        let (results, target) = run_streaming_suite(true);
        assert_eq!(results.len(), 4, "uniform/hetero × topology/rate-aware");
        assert!(target > 0.0);
        let arm = |profile: &str, aware: bool| {
            results
                .iter()
                .find(|r| r.profile == profile && r.rate_aware == aware)
                .expect("arm present")
        };
        // uniform streams never trigger regrouping and never stall
        assert_eq!(arm("uniform", true).regroups, 0);
        assert_eq!(arm("uniform", true).stall_s, 0.0);
        assert_eq!(arm("uniform", false).stall_s, 0.0);
        let blind = arm("hetero", false);
        let aware = arm("hetero", true);
        assert!(blind.stall_s > 0.0, "topology-only hetero must stall");
        assert!(aware.regroups > 0, "rate-aware hetero must regroup");
        // the acceptance bar: rate-aware regrouping improves
        // time-to-accuracy under heterogeneous stream rates
        let tb = blind.time_to_acc_s.expect("blind arm reaches target");
        let ta = aware.time_to_acc_s.expect("aware arm reaches target");
        assert!(ta < tb, "rate-aware TTA {ta} vs topology-only {tb}");
        let doc = streaming_suite_to_json(&results, target, true);
        assert_eq!(
            doc.get("schema").as_str(),
            Some("socflow-streaming-bench/v1")
        );
        assert_eq!(doc.get("mode").as_str(), Some("fast"));
        assert!(doc.get("hetero_tta_speedup_vs_topology").as_f64().unwrap() > 1.0);
        let rows = doc.get("results").as_array().unwrap();
        assert_eq!(rows.len(), 4);
        for key in [
            "profile",
            "rate_aware",
            "best_accuracy",
            "time_to_acc_s",
            "sim_time_s",
            "stall_s",
            "samples_dropped",
            "rate_regroups",
        ] {
            assert!(!rows[0].get(key).is_null(), "missing field {key}");
        }
    }

    #[test]
    fn streaming_suite_is_byte_deterministic() {
        let (r1, t1) = run_streaming_suite(true);
        let (r2, t2) = run_streaming_suite(true);
        let a = serde_json::to_string_pretty(&streaming_suite_to_json(&r1, t1, true)).unwrap();
        let b = serde_json::to_string_pretty(&streaming_suite_to_json(&r2, t2, true)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_fill_is_seed_stable() {
        let a = tensor([4, 4], 7);
        let b = tensor([4, 4], 7);
        let c = tensor([4, 4], 8);
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }
}
