//! Minimal `--flag value` option parsing (no external dependencies).

/// Parsed command-line options; every field has a sensible default.
#[derive(Debug, Clone)]
pub struct Options {
    pub socs: usize,
    pub groups: Option<usize>,
    pub model: String,
    pub dataset: String,
    pub method: String,
    pub epochs: usize,
    pub samples: usize,
    pub seed: u64,
    pub json: bool,
    /// Write a JSONL telemetry trace of the run to this path.
    pub trace: Option<String>,
    /// Enable the host kernel profiler for the run: KernelTotals events
    /// land in the trace, and a host-time attribution table is printed.
    pub profile_kernels: bool,
    /// Fault timeline spec `<mean_reclaim_s>:<mean_crash_s>` sampled over
    /// the job's SoCs (e.g. `600:3600`).
    pub faults: Option<String>,
    /// Directory for durable checkpoints (enables checkpointing).
    pub checkpoint_dir: Option<String>,
    /// Persist a checkpoint every N epochs (defaults to 1 when a
    /// checkpoint dir is given).
    pub checkpoint_every: Option<usize>,
    /// Resume from the latest checkpoint in `--checkpoint-dir`.
    pub resume: bool,
    /// Price SoCFlow epochs with the event-driven fluid timeline instead
    /// of the closed-form Eq. 1 sums.
    pub timeline: bool,
    /// Overlap per-bucket gradient transfers with backprop on the fluid
    /// timeline (wait-free bucketing; implies `--timeline`).
    pub overlap: bool,
    /// Minimum gradient-bucket size in KiB of reference payload
    /// (requires `--overlap`).
    pub bucket_kb: Option<usize>,
    /// Worker-pool size for host compute (overrides `SOCFLOW_THREADS`).
    /// Results are bit-identical at any thread count; this only changes
    /// wall-clock time.
    pub threads: Option<usize>,
    /// Measured β compute-power ratio override in (0,1) — typically the
    /// value `bench kernels` reports from timing the f32 and i8 GEMMs.
    pub profiled_beta: Option<f64>,
    /// Number of servers in the simulated fleet (`fleet`).
    pub servers: usize,
    /// Number of jobs on the fleet arrival trace (`fleet`).
    pub jobs: usize,
    /// Fleet admission/placement policy: `tidal` | `fifo` (`fleet`).
    pub policy: String,
    /// Fleet simulation horizon in hours (`fleet`).
    pub horizon: usize,
    /// Mean Poisson inter-arrival time between fleet jobs, seconds
    /// (`fleet`).
    pub interarrival: f64,
    /// Ingest training data from live per-SoC streams instead of the
    /// static pre-partitioned corpus (`train --streaming`).
    pub streaming: bool,
    /// Per-SoC stream-rate profile: `uniform` | `hetero` | `bimodal`
    /// (requires `--streaming`).
    pub rates: String,
    /// Per-group ingest-buffer capacity in multiples of the global batch
    /// (requires `--streaming`).
    pub buffer_batches: usize,
    /// Full-buffer policy: `drop` | `block` (requires `--streaming`).
    pub on_full: String,
    /// Autotune the parallelization plan on the simulated clock before
    /// training and adopt the winner (`train --auto`).
    pub auto: bool,
    /// Max candidates the autotuner prices on the timeline (requires
    /// `--auto`; `tune` accepts it standalone).
    pub auto_budget: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            socs: 32,
            groups: None,
            model: "lenet5".into(),
            dataset: "fmnist".into(),
            method: "ours".into(),
            epochs: 10,
            samples: 2048,
            seed: 42,
            json: false,
            trace: None,
            profile_kernels: false,
            faults: None,
            checkpoint_dir: None,
            checkpoint_every: None,
            resume: false,
            timeline: false,
            overlap: false,
            bucket_kb: None,
            threads: None,
            profiled_beta: None,
            servers: 4,
            jobs: 12,
            policy: "tidal".into(),
            horizon: 72,
            interarrival: 5400.0,
            streaming: false,
            rates: "uniform".into(),
            buffer_batches: 2,
            on_full: "block".into(),
            auto: false,
            auto_budget: None,
        }
    }
}

impl Options {
    /// Parses `--flag value` pairs (plus the bare `--json` switch).
    ///
    /// # Errors
    /// Returns a description of the first malformed flag.
    pub fn parse(argv: &[String]) -> Result<Options, String> {
        let mut o = Options::default();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            if flag == "--json" {
                o.json = true;
                continue;
            }
            if flag == "--profile-kernels" {
                o.profile_kernels = true;
                continue;
            }
            if flag == "--resume" {
                o.resume = true;
                continue;
            }
            if flag == "--timeline" {
                o.timeline = true;
                continue;
            }
            if flag == "--overlap" {
                o.overlap = true;
                continue;
            }
            if flag == "--streaming" {
                o.streaming = true;
                continue;
            }
            if flag == "--auto" {
                o.auto = true;
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag `{flag}` needs a value"))?;
            match flag.as_str() {
                "--socs" => o.socs = parse_num(flag, value)?,
                "--groups" => o.groups = Some(parse_num(flag, value)?),
                "--model" => o.model = value.clone(),
                "--dataset" => o.dataset = value.clone(),
                "--method" => o.method = value.clone(),
                "--epochs" => o.epochs = parse_num(flag, value)?,
                "--samples" => o.samples = parse_num(flag, value)?,
                "--seed" => o.seed = parse_num(flag, value)? as u64,
                "--trace" => o.trace = Some(value.clone()),
                "--faults" => o.faults = Some(value.clone()),
                "--checkpoint-dir" => o.checkpoint_dir = Some(value.clone()),
                "--checkpoint-every" => o.checkpoint_every = Some(parse_num(flag, value)?),
                "--threads" => o.threads = Some(parse_num(flag, value)?),
                "--bucket-kb" => o.bucket_kb = Some(parse_num(flag, value)?),
                "--auto-budget" => o.auto_budget = Some(parse_num(flag, value)?),
                "--rates" => o.rates = value.clone(),
                "--buffer-batches" => o.buffer_batches = parse_num(flag, value)?,
                "--on-full" => o.on_full = value.clone(),
                "--servers" => o.servers = parse_num(flag, value)?,
                "--jobs" => o.jobs = parse_num(flag, value)?,
                "--policy" => o.policy = value.clone(),
                "--horizon" => o.horizon = parse_num(flag, value)?,
                "--interarrival" => {
                    let v: f64 = value
                        .parse()
                        .map_err(|_| format!("`{flag}` expects a number, got `{value}`"))?;
                    if v <= 0.0 || !v.is_finite() {
                        return Err(format!("`{flag}` must be positive, got `{value}`"));
                    }
                    o.interarrival = v;
                }
                "--profiled-beta" => {
                    let beta: f64 = value
                        .parse()
                        .map_err(|_| format!("`{flag}` expects a number, got `{value}`"))?;
                    if !(beta > 0.0 && beta < 1.0) {
                        return Err(format!(
                            "`{flag}` must be strictly between 0 and 1, got `{value}`"
                        ));
                    }
                    o.profiled_beta = Some(beta);
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if o.socs == 0 {
            return Err("--socs must be positive".into());
        }
        if o.resume && o.checkpoint_dir.is_none() {
            return Err("--resume needs --checkpoint-dir".into());
        }
        if o.threads == Some(0) {
            return Err("--threads must be positive".into());
        }
        if o.bucket_kb == Some(0) {
            return Err("--bucket-kb must be positive".into());
        }
        if o.bucket_kb.is_some() && !o.overlap {
            return Err("--bucket-kb needs --overlap".into());
        }
        if o.auto_budget == Some(0) {
            return Err("--auto-budget must be positive".into());
        }
        if o.auto && (o.timeline || o.overlap || o.bucket_kb.is_some()) {
            return Err(
                "--auto picks the schedule itself; drop --timeline/--overlap/--bucket-kb".into(),
            );
        }
        if o.servers == 0 {
            return Err("--servers must be positive".into());
        }
        if o.jobs == 0 {
            return Err("--jobs must be positive".into());
        }
        if o.horizon == 0 {
            return Err("--horizon must be positive".into());
        }
        if !o.streaming {
            let defaults = Options::default();
            if o.rates != defaults.rates {
                return Err("--rates needs --streaming".into());
            }
            if o.buffer_batches != defaults.buffer_batches {
                return Err("--buffer-batches needs --streaming".into());
            }
            if o.on_full != defaults.on_full {
                return Err("--on-full needs --streaming".into());
            }
        }
        socflow_data::stream::RateProfile::parse(&o.rates)?;
        socflow_data::stream::OnFull::parse(&o.on_full)?;
        if o.buffer_batches == 0 {
            return Err("--buffer-batches must be positive".into());
        }
        Ok(o)
    }
}

fn parse_num(flag: &str, value: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("`{flag}` expects a number, got `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Options::parse(&v)
    }

    #[test]
    fn defaults_apply() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.socs, 32);
        assert_eq!(o.method, "ours");
        assert!(!o.json);
    }

    #[test]
    fn flags_override() {
        let o = parse(&[
            "--socs", "16", "--model", "vgg11", "--json", "--groups", "4",
        ])
        .unwrap();
        assert_eq!(o.socs, 16);
        assert_eq!(o.model, "vgg11");
        assert_eq!(o.groups, Some(4));
        assert!(o.json);
    }

    #[test]
    fn trace_flag_takes_a_path() {
        let o = parse(&["--trace", "run.jsonl"]).unwrap();
        assert_eq!(o.trace.as_deref(), Some("run.jsonl"));
        assert!(parse(&["--trace"]).is_err());
    }

    #[test]
    fn profile_kernels_is_a_bare_switch() {
        let o = parse(&["--profile-kernels", "--epochs", "2"]).unwrap();
        assert!(o.profile_kernels);
        assert_eq!(o.epochs, 2);
        assert!(!parse(&[]).unwrap().profile_kernels);
    }

    #[test]
    fn timeline_is_a_bare_switch() {
        let o = parse(&["--timeline", "--epochs", "2"]).unwrap();
        assert!(o.timeline);
        assert_eq!(o.epochs, 2);
        assert!(!parse(&[]).unwrap().timeline);
    }

    #[test]
    fn overlap_and_bucket_kb_parse_together() {
        let o = parse(&["--overlap", "--bucket-kb", "2048"]).unwrap();
        assert!(o.overlap);
        assert_eq!(o.bucket_kb, Some(2048));
        let bare = parse(&["--overlap"]).unwrap();
        assert!(bare.overlap && bare.bucket_kb.is_none());
        assert!(!parse(&[]).unwrap().overlap);
        assert!(parse(&["--bucket-kb", "512"]).is_err(), "needs --overlap");
        assert!(parse(&["--overlap", "--bucket-kb", "0"]).is_err());
        assert!(parse(&["--overlap", "--bucket-kb"]).is_err());
    }

    #[test]
    fn fault_and_checkpoint_flags_parse() {
        let o = parse(&[
            "--faults",
            "600:3600",
            "--checkpoint-dir",
            "/tmp/ck",
            "--checkpoint-every",
            "3",
        ])
        .unwrap();
        assert_eq!(o.faults.as_deref(), Some("600:3600"));
        assert_eq!(o.checkpoint_dir.as_deref(), Some("/tmp/ck"));
        assert_eq!(o.checkpoint_every, Some(3));
        assert!(!o.resume);
    }

    #[test]
    fn resume_is_a_bare_switch_needing_a_dir() {
        let o = parse(&["--checkpoint-dir", "/tmp/ck", "--resume"]).unwrap();
        assert!(o.resume);
        assert!(parse(&["--resume"]).is_err(), "resume needs a dir");
    }

    #[test]
    fn threads_flag_parses_and_rejects_zero() {
        let o = parse(&["--threads", "4"]).unwrap();
        assert_eq!(o.threads, Some(4));
        assert_eq!(parse(&[]).unwrap().threads, None);
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads"]).is_err());
    }

    #[test]
    fn profiled_beta_parses_and_rejects_out_of_range() {
        let o = parse(&["--profiled-beta", "0.78"]).unwrap();
        assert_eq!(o.profiled_beta, Some(0.78));
        assert_eq!(parse(&[]).unwrap().profiled_beta, None);
        assert!(parse(&["--profiled-beta", "0"]).is_err());
        assert!(parse(&["--profiled-beta", "1.0"]).is_err());
        assert!(parse(&["--profiled-beta", "nan"]).is_err());
        assert!(parse(&["--profiled-beta", "big"]).is_err());
    }

    #[test]
    fn fleet_flags_parse_and_validate() {
        let o = parse(&[
            "--servers",
            "2",
            "--jobs",
            "9",
            "--policy",
            "fifo",
            "--horizon",
            "48",
            "--interarrival",
            "1800",
        ])
        .unwrap();
        assert_eq!(o.servers, 2);
        assert_eq!(o.jobs, 9);
        assert_eq!(o.policy, "fifo");
        assert_eq!(o.horizon, 48);
        assert_eq!(o.interarrival, 1800.0);
        let d = parse(&[]).unwrap();
        assert_eq!(d.servers, 4);
        assert_eq!(d.jobs, 12);
        assert_eq!(d.policy, "tidal");
        assert_eq!(d.horizon, 72);
        assert!(parse(&["--servers", "0"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--horizon", "0"]).is_err());
        assert!(parse(&["--interarrival", "-5"]).is_err());
        assert!(parse(&["--interarrival", "soon"]).is_err());
    }

    #[test]
    fn streaming_flags_parse_and_validate() {
        let o = parse(&[
            "--streaming",
            "--rates",
            "hetero",
            "--buffer-batches",
            "4",
            "--on-full",
            "drop",
        ])
        .unwrap();
        assert!(o.streaming);
        assert_eq!(o.rates, "hetero");
        assert_eq!(o.buffer_batches, 4);
        assert_eq!(o.on_full, "drop");
        let d = parse(&[]).unwrap();
        assert!(!d.streaming);
        assert_eq!(d.rates, "uniform");
        assert_eq!(d.buffer_batches, 2);
        assert_eq!(d.on_full, "block");
        assert!(parse(&["--rates", "hetero"]).is_err(), "needs --streaming");
        assert!(parse(&["--on-full", "drop"]).is_err(), "needs --streaming");
        assert!(
            parse(&["--buffer-batches", "4"]).is_err(),
            "needs --streaming"
        );
        assert!(parse(&["--streaming", "--rates", "chaotic"]).is_err());
        assert!(parse(&["--streaming", "--on-full", "explode"]).is_err());
        assert!(parse(&["--streaming", "--buffer-batches", "0"]).is_err());
    }

    #[test]
    fn auto_flags_parse_and_validate() {
        let o = parse(&["--auto", "--auto-budget", "24"]).unwrap();
        assert!(o.auto);
        assert_eq!(o.auto_budget, Some(24));
        // `tune` takes --auto-budget without --auto
        let t = parse(&["--auto-budget", "8"]).unwrap();
        assert!(!t.auto && t.auto_budget == Some(8));
        assert!(!parse(&[]).unwrap().auto);
        assert!(parse(&["--auto-budget", "0"]).is_err());
        assert!(
            parse(&["--auto", "--timeline"]).is_err(),
            "auto picks the schedule"
        );
        assert!(parse(&["--auto", "--overlap"]).is_err());
    }

    #[test]
    fn rejects_dangling_flag() {
        assert!(parse(&["--socs"]).is_err());
    }

    #[test]
    fn rejects_bad_number() {
        assert!(parse(&["--epochs", "lots"]).is_err());
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse(&["--gpu", "v100"]).is_err());
    }

    #[test]
    fn rejects_zero_socs() {
        assert!(parse(&["--socs", "0"]).is_err());
    }
}
