//! `socflow-cli` — the command-line face of the reproduction.
//!
//! ```text
//! socflow-cli plan  [--socs N] [--groups G]
//! socflow-cli train [--model M] [--dataset D] [--method X] [--socs N]
//!               [--groups G] [--epochs E] [--samples S] [--json]
//!               [--auto [--auto-budget N]]
//! socflow-cli tune  [--model M] [--dataset D] [--method X] [--socs N]
//!               [--groups G] [--auto-budget N] [--json]
//! socflow-cli compare [--model M] [--dataset D] [--socs N] [--epochs E]
//! socflow-cli tidal [--socs N] [--seed S]
//! socflow-cli fleet [--servers N] [--jobs M] [--policy tidal|fifo] [--socs N]
//!               [--horizon H] [--interarrival S] [--seed S] [--json]
//! socflow-cli trace summarize <run.jsonl>
//! socflow-cli bench kernels [--fast] [--json <path>]
//! socflow-cli bench faults [--fast] [--json <path>]
//! socflow-cli bench timeline [--fast] [--json <path>]
//! socflow-cli bench e2e [--fast] [--json <path>]
//! socflow-cli bench fleet [--fast] [--json <path>]
//! socflow-cli bench autotune [--fast] [--json <path>]
//! socflow-cli info
//! ```

mod args;
mod bench;
mod commands;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        commands::print_usage();
        std::process::exit(2);
    }
    let cmd = argv.remove(0);
    // `trace` and `bench` take positional operands, not `--flag value` pairs
    if cmd == "trace" || cmd == "bench" {
        let outcome = if cmd == "trace" {
            commands::trace(&argv)
        } else {
            bench::bench(&argv)
        };
        if let Err(e) = outcome {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let opts = match args::Options::parse(&argv) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            commands::print_usage();
            std::process::exit(2);
        }
    };
    let outcome = match cmd.as_str() {
        "plan" => commands::plan(&opts),
        "train" => commands::train(&opts),
        "tune" => commands::tune(&opts),
        "compare" => commands::compare(&opts),
        "tidal" => commands::tidal(&opts),
        "fleet" => commands::fleet(&opts),
        "info" => commands::info(),
        "help" | "--help" | "-h" => {
            commands::print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
