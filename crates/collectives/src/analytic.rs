//! Closed-form cost models of the collectives, used for sanity checks and
//! for quick what-if estimation by the group-size planner (paper Eq. 1
//! needs a `T_sync` estimate before any simulation runs).

use socflow_cluster::Seconds;

/// Analytic Ring-AllReduce time: `2(n−1)` steps of `bytes/n` at
/// `bandwidth` plus per-step latency.
///
/// # Panics
/// Panics if `bandwidth <= 0`.
pub fn ring_time(
    n: usize,
    bytes: f64,
    bandwidth_bytes_per_s: f64,
    step_latency: Seconds,
) -> Seconds {
    assert!(bandwidth_bytes_per_s > 0.0, "bandwidth must be positive");
    if n < 2 || bytes == 0.0 {
        return 0.0;
    }
    let steps = 2 * (n - 1);
    steps as f64 * (bytes / n as f64 / bandwidth_bytes_per_s + step_latency)
}

/// Analytic parameter-server time: `n−1` pushes into the server link, then
/// `n−1` pulls out of it, serialized on that single link.
///
/// # Panics
/// Panics if `bandwidth <= 0`.
pub fn ps_time(n: usize, bytes: f64, bandwidth_bytes_per_s: f64, step_latency: Seconds) -> Seconds {
    assert!(bandwidth_bytes_per_s > 0.0, "bandwidth must be positive");
    if n < 2 || bytes == 0.0 {
        return 0.0;
    }
    2.0 * ((n - 1) as f64 * bytes / bandwidth_bytes_per_s + step_latency)
}

/// Analytic tree-aggregation time: `2·⌈log_f(n)⌉` levels, each moving one
/// payload per edge (edges of one level run in parallel).
///
/// # Panics
/// Panics if `bandwidth <= 0` or `fanout < 2`.
pub fn tree_time(
    n: usize,
    fanout: usize,
    bytes: f64,
    bandwidth_bytes_per_s: f64,
    step_latency: Seconds,
) -> Seconds {
    assert!(bandwidth_bytes_per_s > 0.0, "bandwidth must be positive");
    assert!(fanout >= 2, "fanout must be at least 2");
    if n < 2 || bytes == 0.0 {
        return 0.0;
    }
    let mut levels = 0usize;
    let mut covered = 1usize;
    while covered < n {
        covered *= fanout;
        levels += 1;
    }
    // children of one parent share the parent's link at each level
    2.0 * levels as f64 * (fanout as f64 * bytes / bandwidth_bytes_per_s + step_latency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collective, ParameterServer, RingAllReduce};
    use socflow_cluster::{calibration, ClusterNet, ClusterSpec, SocId};

    const BW: f64 = 1e9 / 8.0;

    #[test]
    fn ring_formula_basics() {
        // n=4, 40 MB, no latency: 6 steps × 10 MB / 125 MB/s = 0.48 s
        let t = ring_time(4, 40e6, BW, 0.0);
        assert!((t - 0.48).abs() < 1e-9);
        assert_eq!(ring_time(1, 40e6, BW, 0.0), 0.0);
    }

    #[test]
    fn analytic_ring_matches_simulator_intra_board() {
        // On one board there is no contention, so the fluid simulation must
        // equal the closed form.
        let net = ClusterNet::new(ClusterSpec::paper_server());
        let members: Vec<SocId> = (0..5).map(SocId).collect();
        let sim = RingAllReduce.time(&net, &members, 36.9e6);
        let ana = ring_time(5, 36.9e6, BW, calibration::STEP_LATENCY_INTRA);
        assert!(
            (sim - ana).abs() / ana < 0.01,
            "simulator {sim} vs analytic {ana}"
        );
    }

    #[test]
    fn analytic_ps_matches_simulator_intra_board() {
        let net = ClusterNet::new(ClusterSpec::paper_server());
        let members: Vec<SocId> = (0..5).map(SocId).collect();
        let sim = ParameterServer::default().time(&net, &members, 36.9e6);
        let ana = ps_time(5, 36.9e6, BW, calibration::STEP_LATENCY_INTRA);
        assert!(
            (sim - ana).abs() / ana < 0.01,
            "simulator {sim} vs analytic {ana}"
        );
    }

    #[test]
    fn tree_levels_count() {
        // 8 nodes fanout 2 → 3 levels up + 3 down
        let t = tree_time(8, 2, 1e6, BW, 0.0);
        let per_level = 2.0 * 1e6 / BW;
        assert!((t - 6.0 * per_level).abs() < 1e-9);
    }

    #[test]
    fn latency_term_dominates_small_payloads() {
        let t = ring_time(32, 1.0, BW, 0.02);
        assert!((t - 62.0 * 0.02).abs() < 1e-6);
    }
}
