//! Temporal collectives: step sequences priced on the cluster network.

use socflow_cluster::{ClusterNet, Flow, Seconds, SocId};

/// A communication pattern whose wall-clock cost can be evaluated on the
/// simulated cluster network.
pub trait Collective {
    /// Pattern name for reports.
    fn name(&self) -> &'static str;

    /// Wall-clock time to synchronize `bytes` of gradients/weights across
    /// `members` (every member ends with the combined result).
    ///
    /// # Panics
    /// Implementations may panic if `members.len() < 2` where the pattern
    /// is undefined.
    fn time(&self, net: &ClusterNet, members: &[SocId], bytes: f64) -> Seconds;
}

/// Horovod-style Ring-AllReduce: `2(n−1)` steps, each moving one `bytes/n`
/// chunk per member to its ring successor. Bandwidth-optimal, but every
/// step pays the collective's protocol latency — the linear-in-`n` latency
/// growth the paper measures in Fig. 4(b).
#[derive(Debug, Clone, Copy, Default)]
pub struct RingAllReduce;

impl Collective for RingAllReduce {
    fn name(&self) -> &'static str {
        "Ring-AllReduce"
    }

    fn time(&self, net: &ClusterNet, members: &[SocId], bytes: f64) -> Seconds {
        let n = members.len();
        if n < 2 || bytes == 0.0 {
            return 0.0;
        }
        let chunk = bytes / n as f64;
        // every step has the same flow pattern (each member → successor)
        let flows: Vec<Flow> = (0..n)
            .map(|i| Flow::new(members[i], members[(i + 1) % n], chunk))
            .collect();
        let step = net.collective_step_time(&flows);
        step * (2 * (n - 1)) as f64
    }
}

/// Classic parameter server: all workers push `bytes` to one server SoC,
/// which pushes the aggregate back. The server's single 1 Gb/s link is the
/// incast bottleneck.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParameterServer {
    /// Index *into the member slice* of the SoC acting as the server.
    pub server_index: usize,
}

impl Collective for ParameterServer {
    fn name(&self) -> &'static str {
        "Parameter Server"
    }

    fn time(&self, net: &ClusterNet, members: &[SocId], bytes: f64) -> Seconds {
        let n = members.len();
        if n < 2 || bytes == 0.0 {
            return 0.0;
        }
        assert!(self.server_index < n, "server index out of range");
        let server = members[self.server_index];
        let push: Vec<Flow> = members
            .iter()
            .filter(|&&m| m != server)
            .map(|&m| Flow::new(m, server, bytes))
            .collect();
        let pull: Vec<Flow> = members
            .iter()
            .filter(|&&m| m != server)
            .map(|&m| Flow::new(server, m, bytes))
            .collect();
        net.collective_step_time(&push) + net.collective_step_time(&pull)
    }
}

/// Tree aggregation (hierarchical federated learning): reduce up a
/// `fanout`-ary tree over the members, then broadcast back down.
#[derive(Debug, Clone, Copy)]
pub struct TreeAggregate {
    /// Children per tree node (≥ 2).
    pub fanout: usize,
}

impl Default for TreeAggregate {
    fn default() -> Self {
        TreeAggregate { fanout: 2 }
    }
}

impl Collective for TreeAggregate {
    fn name(&self) -> &'static str {
        "Tree-Aggregate"
    }

    fn time(&self, net: &ClusterNet, members: &[SocId], bytes: f64) -> Seconds {
        assert!(self.fanout >= 2, "fanout must be at least 2");
        let n = members.len();
        if n < 2 || bytes == 0.0 {
            return 0.0;
        }
        // members[0] is the root; node i's parent is (i-1)/fanout
        let mut total = 0.0;
        // Reduce: level by level from the deepest, children send to parents.
        let mut levels: Vec<Vec<Flow>> = Vec::new();
        let depth_of = |mut i: usize| {
            let mut d = 0;
            while i > 0 {
                i = (i - 1) / self.fanout;
                d += 1;
            }
            d
        };
        let max_depth = (1..n).map(depth_of).max().unwrap_or(0);
        for level in (1..=max_depth).rev() {
            let flows: Vec<Flow> = (1..n)
                .filter(|&i| depth_of(i) == level)
                .map(|i| Flow::new(members[i], members[(i - 1) / self.fanout], bytes))
                .collect();
            levels.push(flows);
        }
        for flows in &levels {
            total += net.collective_step_time(flows);
        }
        // Broadcast: same levels reversed, directions flipped.
        for flows in levels.iter().rev() {
            let down: Vec<Flow> = flows
                .iter()
                .map(|f| Flow::new(f.dst, f.src, f.bytes))
                .collect();
            total += net.collective_step_time(&down);
        }
        total
    }
}

/// Two-level hierarchical all-reduce: board-local rings reduce first, then
/// one delegate per board runs an inter-board ring, then delegates
/// broadcast back inside their boards. This is the datacenter-style
/// topology SoCFlow's group-wise design generalizes — provided here both
/// as a comparison point and as the inter-group epoch-boundary pattern.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchicalAllReduce;

impl Collective for HierarchicalAllReduce {
    fn name(&self) -> &'static str {
        "Hierarchical-AllReduce"
    }

    fn time(&self, net: &ClusterNet, members: &[SocId], bytes: f64) -> Seconds {
        let n = members.len();
        if n < 2 || bytes == 0.0 {
            return 0.0;
        }
        // partition members by board
        let mut by_board: std::collections::BTreeMap<usize, Vec<SocId>> =
            std::collections::BTreeMap::new();
        for &m in members {
            by_board
                .entry(net.spec().board_of(m).0)
                .or_default()
                .push(m);
        }
        // stage 1: intra-board rings run simultaneously (disjoint links)
        let intra: Seconds = by_board
            .values()
            .map(|g| RingAllReduce.time(net, g, bytes))
            .fold(0.0, f64::max);
        // stage 2: delegates ring across boards
        let delegates: Vec<SocId> = by_board.values().map(|g| g[0]).collect();
        let inter = RingAllReduce.time(net, &delegates, bytes);
        // stage 3: delegates broadcast the result inside their board
        let bcast_flows: Vec<Flow> = by_board
            .values()
            .flat_map(|g| {
                let d = g[0];
                g[1..].iter().map(move |&m| Flow::new(d, m, bytes))
            })
            .collect();
        let bcast = net.collective_step_time(&bcast_flows);
        intra + inter + bcast
    }
}

/// One-to-all broadcast from `root` to the other members, as a single
/// simultaneous flow fan-out (the model-dispatch step when a job starts).
pub fn broadcast_time(net: &ClusterNet, root: SocId, members: &[SocId], bytes: f64) -> Seconds {
    let flows: Vec<Flow> = members
        .iter()
        .filter(|&&m| m != root)
        .map(|&m| Flow::new(root, m, bytes))
        .collect();
    net.collective_step_time(&flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use socflow_cluster::ClusterSpec;

    const MB: f64 = 1e6;

    fn net() -> ClusterNet {
        ClusterNet::new(ClusterSpec::paper_server())
    }

    fn socs(n: usize) -> Vec<SocId> {
        (0..n).map(SocId).collect()
    }

    #[test]
    fn ring_intra_board_matches_paper_anchor() {
        // Paper: 540 ms for VGG-11 (36.9 MB) intra-PCB with 5 SoCs; the
        // paper's 4-SoC experiments land in the same regime.
        let t = RingAllReduce.time(&net(), &socs(5), 36.9 * MB);
        assert!((0.40..0.70).contains(&t), "VGG-11 intra ring: {t}s");
        let t18 = RingAllReduce.time(&net(), &socs(5), 44.7 * MB);
        assert!((0.50..0.85).contains(&t18), "ResNet-18 intra ring: {t18}s");
        assert!(t18 > t);
    }

    #[test]
    fn ps_intra_board_matches_paper_anchor() {
        // Paper: ~2060 ms for VGG-11 intra-PCB parameter server.
        let ps = ParameterServer::default();
        let t = ps.time(&net(), &socs(5), 36.9 * MB);
        assert!((1.8..2.9).contains(&t), "VGG-11 intra PS: {t}s");
    }

    #[test]
    fn ring_latency_grows_linearly_with_members() {
        let t8 = RingAllReduce.time(&net(), &socs(8), 36.9 * MB);
        let t32 = RingAllReduce.time(&net(), &socs(32), 36.9 * MB);
        assert!(
            t32 > t8 * 2.0,
            "32-SoC ring must be much slower: {t8} vs {t32}"
        );
    }

    #[test]
    fn inter_board_ring_slower_than_intra() {
        // 5 SoCs on one board vs 5 spread across boards, same payload
        let intra = RingAllReduce.time(&net(), &socs(5), 36.9 * MB);
        let spread: Vec<SocId> = (0..5).map(|i| SocId(i * 5)).collect();
        let inter = RingAllReduce.time(&net(), &spread, 36.9 * MB);
        assert!(inter > intra, "{inter} vs {intra}");
    }

    #[test]
    fn ps_worse_than_ring_at_scale() {
        let ring = RingAllReduce.time(&net(), &socs(32), 36.9 * MB);
        let ps = ParameterServer::default().time(&net(), &socs(32), 36.9 * MB);
        assert!(ps > ring * 2.0, "PS {ps} should be >> ring {ring}");
    }

    #[test]
    fn tree_beats_ps_at_scale() {
        let tree = TreeAggregate { fanout: 2 }.time(&net(), &socs(32), 36.9 * MB);
        let ps = ParameterServer::default().time(&net(), &socs(32), 36.9 * MB);
        assert!(tree < ps, "tree {tree} should beat PS {ps}");
    }

    #[test]
    fn degenerate_cases_cost_nothing() {
        let n = net();
        assert_eq!(RingAllReduce.time(&n, &socs(1), MB), 0.0);
        assert_eq!(RingAllReduce.time(&n, &socs(4), 0.0), 0.0);
        assert_eq!(ParameterServer::default().time(&n, &socs(1), MB), 0.0);
        assert_eq!(TreeAggregate::default().time(&n, &socs(1), MB), 0.0);
    }

    #[test]
    fn hierarchical_is_no_silver_bullet_per_batch() {
        // On SoC-Cluster's 1 Gb/s links, the delegate ring carries the FULL
        // payload and the board broadcast serializes on one tx link, so
        // per-batch hierarchical all-reduce does NOT beat the flat ring —
        // the quantitative reason SoCFlow synchronizes across groups per
        // EPOCH (delayed aggregation) instead of hierarchically per batch.
        let flat = RingAllReduce.time(&net(), &socs(32), 36.9 * MB);
        let hier = HierarchicalAllReduce.time(&net(), &socs(32), 36.9 * MB);
        assert!(
            hier > flat * 0.8,
            "hier {hier} should not decisively beat flat {flat} here"
        );
        // …but it still crushes the incast-bound parameter server
        let ps = ParameterServer::default().time(&net(), &socs(32), 36.9 * MB);
        assert!(hier < ps / 3.0, "hier {hier} vs ps {ps}");
    }

    #[test]
    fn hierarchical_single_board_is_ring_plus_broadcast() {
        let hier = HierarchicalAllReduce.time(&net(), &socs(5), 10.0 * MB);
        let ring = RingAllReduce.time(&net(), &socs(5), 10.0 * MB);
        let bcast = broadcast_time(&net(), SocId(0), &socs(5), 10.0 * MB);
        assert!(
            (hier - (ring + bcast)).abs() < 1e-6,
            "{hier} vs {} + {}",
            ring,
            bcast
        );
    }

    #[test]
    fn hierarchical_degenerate_cases() {
        let n = net();
        assert_eq!(HierarchicalAllReduce.time(&n, &socs(1), MB), 0.0);
        assert_eq!(HierarchicalAllReduce.time(&n, &socs(8), 0.0), 0.0);
    }

    #[test]
    fn broadcast_is_one_fanout_step() {
        let n = net();
        // intra-board fan-out to 4 receivers through the root's tx link
        let t = broadcast_time(&n, SocId(0), &socs(5), 12.5 * MB);
        // 4 x 12.5 MB through one 125 MB/s tx link = 0.4 s + latency
        assert!((t - 0.409).abs() < 0.01, "{t}");
        // root-only broadcast costs nothing
        assert_eq!(broadcast_time(&n, SocId(0), &[SocId(0)], MB), 0.0);
    }

    #[test]
    fn payload_scales_transfer_time() {
        let t1 = RingAllReduce.time(&net(), &socs(4), 10.0 * MB);
        let t2 = RingAllReduce.time(&net(), &socs(4), 20.0 * MB);
        assert!(t2 > t1 * 1.4 && t2 < t1 * 2.1);
    }
}
