//! # socflow-collectives
//!
//! Collective-communication patterns for distributed training on the
//! SoC-Cluster, with two faces:
//!
//! - **functional**: [`allreduce_mean`] / [`ring_allreduce_sum`] actually
//!   combine per-worker gradient buffers (the chunked ring implementation is
//!   the real reduce-scatter + all-gather algorithm, validated against the
//!   direct sum);
//! - **temporal**: every [`Collective`] computes the wall-clock cost of its
//!   step sequence on the [`socflow_cluster`] flow network, so contention on
//!   the shared PCB NICs shapes the numbers exactly as in paper §2.3.
//!
//! Patterns provided: [`RingAllReduce`] (Horovod-style, bandwidth-optimal),
//! [`ParameterServer`] (centralized incast), [`TreeAggregate`]
//! (hierarchical FL-style reduction) and [`HierarchicalAllReduce`]
//! (board-local rings + delegate ring). Closed-form cost models in
//! [`analytic`] are cross-validated against the simulator in tests.
//!
//! ## Example
//!
//! ```
//! use socflow_cluster::{ClusterNet, ClusterSpec, SocId};
//! use socflow_collectives::{Collective, ParameterServer, RingAllReduce};
//!
//! let net = ClusterNet::new(ClusterSpec::paper_server());
//! let members: Vec<SocId> = (0..32).map(SocId).collect();
//! let ring = RingAllReduce.time(&net, &members, 36.9e6);
//! let ps = ParameterServer::default().time(&net, &members, 36.9e6);
//! assert!(ring < ps, "at 32 SoCs the ring beats the incast-bound PS");
//! ```

#![deny(missing_docs)]

pub mod analytic;
mod functional;
mod patterns;

pub use functional::{allreduce_mean, allreduce_sum, ring_allreduce_sum};
pub use patterns::{
    broadcast_time, Collective, HierarchicalAllReduce, ParameterServer, RingAllReduce,
    TreeAggregate,
};
