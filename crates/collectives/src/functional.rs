//! Functional (data-plane) collectives operating on in-memory buffers.

/// Sums all workers' buffers elementwise and writes the total back to every
/// worker — the semantic contract of all-reduce.
///
/// # Panics
/// Panics if the buffers have different lengths or `buffers` is empty.
pub fn allreduce_sum(buffers: &mut [Vec<f32>]) {
    assert!(!buffers.is_empty(), "all-reduce needs at least one worker");
    let len = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == len),
        "all buffers must have equal length"
    );
    let mut total = vec![0.0f32; len];
    for b in buffers.iter() {
        for (t, v) in total.iter_mut().zip(b) {
            *t += v;
        }
    }
    for b in buffers.iter_mut() {
        b.copy_from_slice(&total);
    }
}

/// All-reduce that leaves the *mean* in every buffer (synchronous SGD's
/// gradient average).
///
/// # Panics
/// Panics if the buffers have different lengths or `buffers` is empty.
pub fn allreduce_mean(buffers: &mut [Vec<f32>]) {
    let n = buffers.len() as f32;
    allreduce_sum(buffers);
    for b in buffers.iter_mut() {
        for v in b.iter_mut() {
            *v /= n;
        }
    }
}

/// The actual chunked Ring-AllReduce algorithm: `n−1` reduce-scatter steps
/// followed by `n−1` all-gather steps over `n` chunks.
///
/// Produces bitwise the ring schedule's result (summation order differs from
/// the direct sum, so floating-point results can differ in the last ulp;
/// tests bound the divergence). Exists to validate that the *time* model's
/// step structure matches a real data-plane schedule.
///
/// # Panics
/// Panics if the buffers have different lengths or `buffers` is empty.
pub fn ring_allreduce_sum(buffers: &mut [Vec<f32>]) {
    let n = buffers.len();
    assert!(n > 0, "all-reduce needs at least one worker");
    if n == 1 {
        return;
    }
    let len = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == len),
        "all buffers must have equal length"
    );
    // chunk boundaries (chunk c = [starts[c], starts[c+1]))
    let starts: Vec<usize> = (0..=n).map(|c| c * len / n).collect();

    // Reduce-scatter: in step s, worker w sends chunk (w - s) mod n to w+1,
    // which accumulates it. After n-1 steps, worker w owns the full sum of
    // chunk (w + 1) mod n.
    for s in 0..n - 1 {
        // gather the outgoing chunks first (simultaneous sends)
        let outgoing: Vec<(usize, Vec<f32>)> = (0..n)
            .map(|w| {
                let c = (w + n - s) % n;
                (c, buffers[w][starts[c]..starts[c + 1]].to_vec())
            })
            .collect();
        for w in 0..n {
            let (c, chunk) = &outgoing[(w + n - 1) % n]; // from predecessor
            for (dst, v) in buffers[w][starts[*c]..starts[c + 1]].iter_mut().zip(chunk) {
                *dst += v;
            }
        }
    }
    // All-gather: in step s, worker w sends its completed chunk
    // (w + 1 - s) mod n onwards.
    for s in 0..n - 1 {
        let outgoing: Vec<(usize, Vec<f32>)> = (0..n)
            .map(|w| {
                let c = (w + 1 + n - s) % n;
                (c, buffers[w][starts[c]..starts[c + 1]].to_vec())
            })
            .collect();
        for w in 0..n {
            let (c, chunk) = &outgoing[(w + n - 1) % n];
            buffers[w][starts[*c]..starts[c + 1]].copy_from_slice(chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_buffers(workers: usize, len: usize) -> Vec<Vec<f32>> {
        (0..workers)
            .map(|w| {
                (0..len)
                    .map(|i| ((w * 31 + i * 7) % 13) as f32 - 6.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn sum_replicates_total() {
        let mut b = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        allreduce_sum(&mut b);
        for w in &b {
            assert_eq!(w, &vec![9.0, 12.0]);
        }
    }

    #[test]
    fn mean_divides_by_workers() {
        let mut b = vec![vec![2.0], vec![4.0]];
        allreduce_mean(&mut b);
        assert_eq!(b, vec![vec![3.0], vec![3.0]]);
    }

    #[test]
    fn ring_equals_direct_sum() {
        for workers in [2usize, 3, 4, 5, 8] {
            for len in [1usize, 7, 16, 33] {
                let mut ring = make_buffers(workers, len);
                let mut direct = ring.clone();
                ring_allreduce_sum(&mut ring);
                allreduce_sum(&mut direct);
                for w in 0..workers {
                    for i in 0..len {
                        assert!(
                            (ring[w][i] - direct[w][i]).abs() < 1e-4,
                            "workers={workers} len={len} w={w} i={i}: {} vs {}",
                            ring[w][i],
                            direct[w][i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ring_single_worker_noop() {
        let mut b = vec![vec![1.0, 2.0, 3.0]];
        ring_allreduce_sum(&mut b);
        assert_eq!(b[0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ring_more_workers_than_elements() {
        // len < n: some chunks are empty; result must still be the sum
        let mut ring = make_buffers(5, 3);
        let mut direct = ring.clone();
        ring_allreduce_sum(&mut ring);
        allreduce_sum(&mut direct);
        assert_eq!(ring, direct);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_lengths() {
        let mut b = vec![vec![1.0], vec![1.0, 2.0]];
        allreduce_sum(&mut b);
    }
}
